"""Mutation API: WAL-backed transactions with snapshot-isolated commits.

A :class:`Transaction` edits a private working copy of the node table
(``insert_subtree`` / ``delete_subtree`` / ``append_document``); no
shared state is touched until :meth:`TransactionManager.commit`.  The
commit pipeline then

1. **validates** — builds the new :class:`XmlDocument` (which checks
   every region-nesting invariant) before anything reaches storage;
2. **prepares copy-on-write storage** — clones of the element store
   and tag index absorb the node delta into *freshly allocated* pages,
   never mutating a page the published database references, so every
   in-flight reader keeps a consistent view;
3. **logs** — BEGIN, one PAGE record per freshly written page, the new
   CATALOG payload, and COMMIT are appended to the write-ahead log,
   which is fsync'd: the commit is durable before publication;
4. **publishes** — under the database's publish lock the new store,
   index, document, and a freshly derived estimator are swapped in,
   the statistics epoch is bumped (invalidating every cached plan),
   and the incremental statistics absorb the delta.

Readers therefore see either the old or the new database, never a mix
— snapshot isolation at document granularity — and a crash at any
point either replays the commit from the log or discards it wholesale
(:mod:`repro.txn.recovery`).

Writers are serialized: :meth:`TransactionManager.begin` blocks until
the previous transaction commits or aborts (a single-writer /
many-readers system, like the paper's Timber base).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.errors import TransactionError
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord, Region
from repro.obs.registry import BucketRecorder
from repro.obs.spans import Span, TraceContext, assign_span_ids
from repro.txn.labels import DEFAULT_GAP, pick_gap, relabel
from repro.txn.stats import IncrementalStatistics
from repro.txn.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import Database

#: commit-size bucket bounds (bytes): one catalog-only commit through
#: multi-megabyte bulk loads.
COMMIT_BYTE_BUCKETS = (512.0, 4096.0, 16384.0, 65536.0, 262144.0,
                       1048576.0, 4194304.0, 16777216.0)


@dataclass
class TxnMetrics:
    """Lifetime write-path counters (surfaced via ``Database.stats``).

    The ``*_seconds`` fields are cumulative per-stage wall time of the
    commit pipeline (validate → copy-on-write → WAL append+fsync →
    publish); every field here is exported as one
    ``repro_txn_counter_total{counter=...}`` series by the service
    collector, so the stage split is scrape-visible without bespoke
    wiring.
    """

    begun: int = 0
    committed: int = 0
    aborted: int = 0
    empty_commits: int = 0
    nodes_added: int = 0
    nodes_removed: int = 0
    pages_logged: int = 0
    wal_bytes: int = 0
    relabels: int = 0
    checkpoints: int = 0
    validate_seconds: float = 0.0
    cow_seconds: float = 0.0
    wal_seconds: float = 0.0
    fsync_seconds: float = 0.0
    publish_seconds: float = 0.0
    commit_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    recovery_seconds: float = 0.0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


@dataclass
class CommitResult:
    """What one commit did (returned by :meth:`TransactionManager.commit`)."""

    txn_id: int
    added: int = 0
    removed: int = 0
    pages_logged: int = 0
    wal_bytes: int = 0
    statistics_epoch: int = 0
    relabels: int = 0
    seconds: float = 0.0

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed


class Transaction:
    """One writer's private view of the document, plus its edit sets.

    All mutation happens in memory on the working node table; storage,
    the log, and the published database are only touched at commit.
    Aborting a transaction is therefore free.
    """

    def __init__(self, manager: "TransactionManager", txn_id: int,
                 document: XmlDocument) -> None:
        self._manager = manager
        self.txn_id = txn_id
        self._nodes: dict[int, NodeRecord] = {
            node.node_id: node for node in document}
        self._root_id = document.root.node_id
        # edit sets relative to the base snapshot: a changed node is
        # its base record in _removed plus its new record in _added.
        self._added: dict[int, NodeRecord] = {}
        self._removed: dict[int, NodeRecord] = {}
        self.status = "open"
        self.relabels = 0

    # -- bookkeeping primitives ---------------------------------------------

    def _check_open(self) -> None:
        if self.status != "open":
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status}")

    def _node(self, node_id: int) -> NodeRecord:
        node = self._nodes.get(node_id)
        if node is None:
            raise TransactionError(f"no node with id {node_id}")
        return node

    def _take(self, node_id: int) -> NodeRecord:
        node = self._nodes.pop(node_id)
        if node_id in self._added:
            del self._added[node_id]
        else:
            # untouched so far, hence still the base snapshot's record
            self._removed[node_id] = node
        return node

    def _put(self, node: NodeRecord) -> None:
        if node.node_id in self._nodes:
            raise TransactionError(
                f"label collision on node id {node.node_id}")
        base = self._removed.get(node.node_id)
        if base is not None and base == node:
            del self._removed[node.node_id]  # change cancelled out
        else:
            self._added[node.node_id] = node
        self._nodes[node.node_id] = node

    def _subtree(self, node: NodeRecord) -> list[NodeRecord]:
        """*node* plus its current descendants, in document order."""
        return sorted((candidate for candidate in self._nodes.values()
                       if node.start <= candidate.start <= node.end),
                      key=lambda candidate: candidate.start)

    # -- mutation API ---------------------------------------------------------

    def append_document(self, document: XmlDocument,
                        gap: int = DEFAULT_GAP) -> int:
        """Splice *document* under the root as its new last child.

        The root's span always has room past its current end — growing
        ``root.end`` renumbers nobody — so appends never relabel:
        exactly ``len(document) + 1`` records change.  Returns the new
        subtree root's node id.
        """
        return self.insert_subtree(self._root_id, document, gap=gap)

    def insert_subtree(self, parent_id: int, document: XmlDocument,
                       gap: int = DEFAULT_GAP) -> int:
        """Insert *document* as the last child of node *parent_id*.

        The subtree is placed in the parent's tail label gap when it
        fits; otherwise the smallest enclosing subtree with room is
        relabelled locally (escalating to the root only when every
        intermediate span is exhausted).  Returns the new subtree
        root's node id.
        """
        self._check_open()
        parent = self._node(parent_id)
        count = len(document.nodes)
        if parent.node_id == self._root_id:
            base = parent.end + 1
            placed = relabel(document.nodes, base, gap,
                             parent.level + 1, parent.node_id)
            self._take(parent.node_id)
            self._put(NodeRecord(
                node_id=parent.node_id, tag=parent.tag,
                region=Region(parent.start, base + count * gap - 1,
                              parent.level),
                parent_id=parent.parent_id, text=parent.text,
                attributes=dict(parent.attributes)))
            for node in placed:
                self._put(node)
            return placed[0].node_id
        subtree = self._subtree(parent)
        used_end = max((node.end for node in subtree[1:]),
                       default=parent.start)
        free_low = used_end + 1
        capacity = parent.end - free_low + 1
        fitted_gap = pick_gap(capacity, count) if capacity >= 1 else None
        if fitted_gap is not None:
            placed = relabel(document.nodes, free_low, fitted_gap,
                             parent.level + 1, parent.node_id)
            for node in placed:
                self._put(node)
            return placed[0].node_id
        return self._relabel_and_insert(parent, document)

    def delete_subtree(self, node_id: int) -> int:
        """Remove the node and its whole subtree; returns nodes removed.

        No other label changes: region encodings stay valid when a
        subrange empties (ancestors' ends simply over-cover, which the
        containment predicates never notice), so a delete touches
        exactly the deleted records.
        """
        self._check_open()
        node = self._node(node_id)
        if node.node_id == self._root_id:
            raise TransactionError("cannot delete the document root")
        doomed = self._subtree(node)
        for victim in doomed:
            self._take(victim.node_id)
        return len(doomed)

    # -- local relabel (gap exhaustion) ---------------------------------------

    def _relabel_and_insert(self, parent: NodeRecord,
                            document: XmlDocument) -> int:
        """Relabel the nearest enclosing subtree with room, then insert.

        Walks up from *parent* to the smallest ancestor whose span can
        hold its current descendants plus the incoming subtree, and
        renumbers exactly that ancestor's descendants with fresh gapped
        labels (the ancestor's own span is untouched unless it is the
        root, whose end may grow).
        """
        count = len(document.nodes)
        anchor = parent
        while anchor.node_id != self._root_id:
            existing = len(self._subtree(anchor)) - 1
            if pick_gap(anchor.end - anchor.start,
                        existing + count) is not None:
                break
            anchor = self._node(anchor.parent_id)
        self.relabels += 1
        descendants = self._subtree(anchor)[1:]
        total = len(descendants) + count
        if anchor.node_id == self._root_id:
            chosen_gap = max(
                pick_gap(anchor.end - anchor.start, total) or 0,
                DEFAULT_GAP)
        else:
            chosen_gap = pick_gap(anchor.end - anchor.start, total)
            assert chosen_gap is not None  # guaranteed by the walk-up
        children: dict[int, list[NodeRecord]] = {}
        for node in descendants:
            children.setdefault(node.parent_id, []).append(node)
        # pre-order walk of the anchor's subtree with the incoming
        # document grafted after the insertion parent's last child.
        # items: (record, source, new_level, last_descendant_index)
        items: list[list] = []

        def place(node: NodeRecord, level: int) -> None:
            index = len(items)
            items.append([node, "old", level, 0])
            for child in children.get(node.node_id, ()):
                place(child, level + 1)
            if node.node_id == parent.node_id:
                place_graft(document.root, level + 1)
            items[index][3] = len(items) - 1

        def place_graft(node: NodeRecord, level: int) -> None:
            index = len(items)
            items.append([node, "new", level, 0])
            for child in document.children(node):
                place_graft(child, level + 1)
            items[index][3] = len(items) - 1

        for top in children.get(anchor.node_id, ()):
            place(top, anchor.level + 1)
        if parent.node_id == anchor.node_id:
            place_graft(document.root, anchor.level + 1)
        base = anchor.start + 1
        # new ids keyed per source namespace (labels of the incoming
        # document overlap the live document's)
        new_id: dict[tuple[str, int], int] = {
            (source, node.node_id): base + index * chosen_gap
            for index, (node, source, _, __) in enumerate(items)}
        grafted_root_id: int | None = None
        for victim in descendants:
            self._take(victim.node_id)
        if anchor.node_id == self._root_id:
            new_end = max(anchor.end,
                          base + total * chosen_gap - 1)
            if new_end != anchor.end:
                root = self._take(anchor.node_id)
                self._put(NodeRecord(
                    node_id=root.node_id, tag=root.tag,
                    region=Region(root.start, new_end, root.level),
                    parent_id=root.parent_id, text=root.text,
                    attributes=dict(root.attributes)))
        for index, (node, source, level, last) in enumerate(items):
            start = base + index * chosen_gap
            end = base + last * chosen_gap + chosen_gap - 1
            if source == "old":
                old_parent = node.parent_id
                parent_key = ("old", old_parent)
            else:
                old_parent = node.parent_id
                parent_key = ("new", old_parent)
            mapped_parent = new_id.get(parent_key)
            if mapped_parent is None:
                # tops hang off the anchor; the grafted document's own
                # root hangs off the insertion parent.
                if source == "new" and node.parent_id < 0 \
                        and parent.node_id != anchor.node_id:
                    mapped_parent = new_id[("old", parent.node_id)]
                else:
                    mapped_parent = anchor.node_id
            record = NodeRecord(
                node_id=start, tag=node.tag,
                region=Region(start, end, level),
                parent_id=mapped_parent, text=node.text,
                attributes=dict(node.attributes))
            self._put(record)
            if source == "new" and node.parent_id < 0:
                grafted_root_id = start
        assert grafted_root_id is not None
        return grafted_root_id

    # -- terminal states ------------------------------------------------------

    def commit(self) -> CommitResult:
        """Shorthand for ``manager.commit(self)``."""
        return self._manager.commit(self)

    def abort(self) -> None:
        """Shorthand for ``manager.abort(self)``."""
        self._manager.abort(self)


class TransactionManager:
    """Single-writer transaction scope over one :class:`Database`.

    Owns the write-ahead log, the writer mutex, and the incremental
    statistics; created via :meth:`repro.api.Database.transactions`
    (in-memory log) or :func:`repro.txn.db.open_database` (durable
    log next to the pages file).
    """

    def __init__(self, db: "Database", wal: WriteAheadLog | None = None,
                 next_txn_id: int = 1) -> None:
        self.db = db
        self.wal = wal if wal is not None else WriteAheadLog(None)
        self.metrics = TxnMetrics()
        #: per-commit distributions, mirrored into registry histograms
        #: by the service collector (guarded by the writer mutex, like
        #: everything else commit-side)
        self.commit_latency = BucketRecorder()
        self.commit_bytes = BucketRecorder(COMMIT_BYTE_BUCKETS)
        self._writer = threading.Lock()
        self._next_txn_id = next_txn_id
        #: set by :func:`repro.txn.db.open_database` after a redo pass.
        self.last_recovery = None
        document = db.document
        if document is None:
            raise TransactionError(
                "cannot manage transactions before a document is loaded")
        self.stats = IncrementalStatistics(document,
                                           grid=db.histogram_grid)

    def reset_statistics(self) -> None:
        """Rebuild the incremental statistics from the live document
        (after :meth:`repro.api.Database.reload` replaced it wholesale)."""
        document = self.db.document
        if document is not None:
            self.stats = IncrementalStatistics(document,
                                               grid=self.db.histogram_grid)

    # -- lifecycle ------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a transaction; blocks while another writer is open."""
        self._writer.acquire()
        try:
            document = self.db.document
            if document is None:
                raise TransactionError("no document loaded")
            txn = Transaction(self, self._next_txn_id, document)
            self._next_txn_id += 1
            self.metrics.begun += 1
            return txn
        except BaseException:
            self._writer.release()
            raise

    def abort(self, txn: Transaction) -> None:
        """Discard the transaction; free because nothing was shared."""
        txn._check_open()
        txn.status = "aborted"
        self.metrics.aborted += 1
        self._writer.release()

    def commit(self, txn: Transaction) -> CommitResult:
        """Validate, prepare copy-on-write storage, log, publish."""
        txn._check_open()
        started = time.perf_counter()
        try:
            result = self._commit_locked(txn, started)
            txn.status = "committed"
            return result
        except BaseException:
            txn.status = "failed"
            self.metrics.aborted += 1
            raise
        finally:
            self._writer.release()

    def _commit_locked(self, txn: Transaction,
                       started: float) -> CommitResult:
        db = self.db
        added = txn._added
        removed = txn._removed
        if not added and not removed:
            self.metrics.empty_commits += 1
            return CommitResult(txn_id=txn.txn_id,
                                statistics_epoch=db.statistics_epoch,
                                seconds=time.perf_counter() - started)
        span = Span("commit", detail=f"txn {txn.txn_id}")
        # 1. validate: XmlDocument enforces every labelling invariant
        # before a single byte reaches storage or the log.
        validate_span = Span(
            "validate", detail=f"+{len(added)} -{len(removed)} nodes")
        validate_started = time.perf_counter()
        new_document = XmlDocument(
            sorted(txn._nodes.values(), key=lambda node: node.start),
            name=db.name)
        validate_span.seconds = (time.perf_counter()
                                 - validate_started)
        # 2. copy-on-write storage: the delta lands in fresh pages only.
        cow_span = Span("cow")
        cow_started = time.perf_counter()
        pages_before = db.disk.page_count
        store = db.store.clone_for_write()
        store.remove_nodes(removed)
        for node in sorted(added.values(), key=lambda node: node.start):
            store.store_node(node)
        index = db.index.clone_for_write()
        index.apply_edits(_index_edits(added.values(), removed.values()))
        payload = {
            "name": db.name,
            "store_pages": store.page_ids,
            "index_chains": index.chains(),
            "index_counts": index.counts(),
            "node_count": store.node_count,
        }
        deleted = store.deleted_rids()
        if deleted:
            payload["deleted_rids"] = deleted
        cow_span.seconds = time.perf_counter() - cow_started
        cow_span.detail = (f"{db.disk.page_count - pages_before} "
                           f"fresh pages")
        # 3. log + fsync: after append_commit returns, the transaction
        # survives any crash; before it, recovery discards it wholesale.
        wal_span = Span("wal")
        wal_started = time.perf_counter()
        wal_before = self.wal.size
        sync_before = self.wal.stats.sync_seconds
        self.wal.append_begin(txn.txn_id)
        pages_logged = 0
        for page_id in range(pages_before, db.disk.page_count):
            page = db.pool.fetch(page_id)
            try:
                image = page.to_bytes()
            finally:
                db.pool.unpin(page_id)
            self.wal.append_page(txn.txn_id, page_id, image)
            pages_logged += 1
        self.wal.append_catalog(txn.txn_id, payload)
        self.wal.append_commit(txn.txn_id)
        wal_bytes = self.wal.size - wal_before
        fsync_seconds = self.wal.stats.sync_seconds - sync_before
        wal_span.seconds = time.perf_counter() - wal_started
        wal_span.detail = f"{pages_logged} pages, {wal_bytes} bytes"
        fsync_span = Span("fsync")
        fsync_span.seconds = fsync_seconds
        wal_span.children = [fsync_span]
        # 4. publish atomically: readers see old or new, never a mix.
        publish_span = Span("publish")
        publish_started = time.perf_counter()
        with db._publish_lock:
            db.store = store
            db.index = index
            db.document = new_document
            self.stats.apply_delta(added.values(), removed.values())
            db._estimator = self.stats.estimator()
            db._exact_estimator = None
            db.statistics_epoch += 1
            if db._service is not None:
                db._service.invalidate()
        publish_span.seconds = time.perf_counter() - publish_started
        publish_span.detail = f"epoch {db.statistics_epoch}"
        seconds = time.perf_counter() - started
        span.children = [validate_span, cow_span, wal_span,
                         publish_span]
        span.seconds = seconds
        span.output_rows = len(added) + len(removed)
        # the write path is its own (single-process) trace; stamping
        # gives commits joinable trace ids in /traces and the audit log
        assign_span_ids(span, TraceContext.new().trace_id,
                        prefix=f"t{txn.txn_id}-")
        db.tracer.record(span)
        self.metrics.committed += 1
        self.metrics.nodes_added += len(added)
        self.metrics.nodes_removed += len(removed)
        self.metrics.pages_logged += pages_logged
        self.metrics.wal_bytes += wal_bytes
        self.metrics.relabels += txn.relabels
        self.metrics.validate_seconds += validate_span.seconds
        self.metrics.cow_seconds += cow_span.seconds
        self.metrics.wal_seconds += wal_span.seconds
        self.metrics.fsync_seconds += fsync_seconds
        self.metrics.publish_seconds += publish_span.seconds
        self.metrics.commit_seconds += seconds
        self.commit_latency.observe(seconds)
        self.commit_bytes.observe(wal_bytes)
        return CommitResult(
            txn_id=txn.txn_id, added=len(added), removed=len(removed),
            pages_logged=pages_logged, wal_bytes=wal_bytes,
            statistics_epoch=db.statistics_epoch,
            relabels=txn.relabels, seconds=seconds)

    # -- checkpoint ------------------------------------------------------------

    def checkpoint(self) -> int:
        """Flush pages, anchor the catalog, reset the log.

        Ordering is the recovery contract: data pages and the page-0
        catalog become durable (``persist`` ends in an fsync) *before*
        the log resets, so a crash at any point leaves either the old
        log (fully replayable over the new pages — redo is idempotent)
        or the new, empty one.  Returns the bytes dropped from the log.
        """
        with self._writer:
            started = time.perf_counter()
            dropped = self.wal.size
            self.db.persist()
            self.wal.truncate(0)
            self.wal.append_checkpoint({
                "pages": self.db.disk.page_count,
                "node_count": self.db.store.node_count,
                "statistics_epoch": self.db.statistics_epoch,
            })
            seconds = time.perf_counter() - started
            self.metrics.checkpoints += 1
            self.metrics.checkpoint_seconds += seconds
            span = Span("checkpoint",
                        detail=f"dropped {dropped} WAL bytes")
            span.seconds = seconds
            assign_span_ids(span, TraceContext.new().trace_id,
                            prefix="ckpt-")
            self.db.tracer.record(span)
            return dropped

    def close(self) -> None:
        """Close the log (the database's pages stay open)."""
        self.wal.close()


def _index_edits(
        added: Iterable[NodeRecord], removed: Iterable[NodeRecord],
) -> dict[str, tuple[set[int], list[tuple[int, int, int]]]]:
    """Group a node delta into per-tag posting edits."""
    edits: dict[str, tuple[set[int], list[tuple[int, int, int]]]] = {}
    for node in removed:
        edits.setdefault(node.tag, (set(), []))[0].add(node.start)
    for node in added:
        edits.setdefault(node.tag, (set(), []))[1].append(
            (node.start, node.end, node.level))
    return edits
