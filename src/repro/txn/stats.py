"""Incremental statistics maintenance for the write path.

The optimizer plans with per-tag :class:`~repro.estimation.estimator.
TagStatistics` (counts, positional and level histograms, distinct-value
counts).  A full rebuild is O(document); a commit touching *k* nodes
should pay O(k).  :class:`IncrementalStatistics` keeps the per-tag
entries plus the *multisets* the distinct-value counts are derived from
(a plain set cannot survive removals), and applies per-commit deltas by
copy-on-write: only the entries of touched tags (plus the ``"*"``
aggregate) are cloned, so estimators handed out for earlier snapshots
keep reading frozen statistics — the statistics-epoch analogue of the
posting-chain copy-on-write in :mod:`repro.txn.mutate`.

Appended labels can outgrow a histogram's position space; the space is
then doubled (an exact bucket-pair merge, see
:meth:`~repro.estimation.histogram.PositionalHistogram.double_space`)
until the new labels fit.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.document.document import XmlDocument
from repro.document.node import NodeRecord
from repro.estimation.estimator import (WILDCARD, PositionalEstimator,
                                        TagStatistics,
                                        build_tag_statistics)
from repro.estimation.histogram import PositionalHistogram


class IncrementalStatistics:
    """Per-tag statistics that absorb add/remove node deltas."""

    def __init__(self, document: XmlDocument, grid: int = 16) -> None:
        self.grid = grid
        self._stats: dict[str, TagStatistics] = build_tag_statistics(
            document, grid=grid)
        # multisets behind the distinct counts: value -> multiplicity
        self._texts: dict[str, Counter] = {}
        self._attributes: dict[str, dict[str, Counter]] = {}
        for node in document:
            self._count_values(node, +1)
        #: label space all histograms were sized for (grows by doubling)
        self.position_space = document.root.end + 1

    # -- delta application -------------------------------------------------

    def apply_delta(self, added: Iterable[NodeRecord],
                    removed: Iterable[NodeRecord]) -> None:
        """Absorb one commit's node delta, copy-on-write per tag.

        Touched tag entries (and the ``"*"`` aggregate) are cloned
        before mutation so previously handed-out estimators keep a
        frozen view; untouched tags share their existing entries.
        """
        added = list(added)
        removed = list(removed)
        touched = ({node.tag for node in added}
                   | {node.tag for node in removed})
        if not touched:
            return
        touched.add(WILDCARD)
        max_end = max((node.end for node in added), default=0)
        if max_end >= self.position_space:
            # space growth rebuckets every histogram, so every entry
            # must be cloned to keep older estimators frozen
            touched.update(self._stats)
        for tag in touched:
            entry = self._stats.get(tag)
            if entry is not None:
                self._stats[tag] = entry.clone()
        if max_end >= self.position_space:
            space = self.position_space
            while max_end >= space:
                space *= 2
            self._grow_space(space)
        for node in removed:
            for key in (node.tag, WILDCARD):
                entry = self._stats[key]
                entry.count -= 1
                entry.positions.remove(node.region)
                entry.levels.remove(node.level)
            self._count_values(node, -1)
        for node in added:
            for key in (node.tag, WILDCARD):
                entry = self._stats.get(key)
                if entry is None:
                    entry = TagStatistics(
                        key, positions=PositionalHistogram(
                            self.position_space, self.grid))
                    self._stats[key] = entry
                entry.count += 1
                entry.positions.ensure_space(node.end)
                entry.positions.add(node.region)
                entry.levels.add(node.level)
            self._count_values(node, +1)
        for tag in touched:
            entry = self._stats.get(tag)
            if entry is None:
                continue
            if entry.count == 0 and tag != WILDCARD:
                del self._stats[tag]
                continue
            entry.distinct_texts = len(self._texts.get(tag, ()))
            entry.distinct_attribute_values = {
                name: len(values)
                for name, values in self._attributes.get(tag, {}).items()
                if values}

    def _grow_space(self, space: int) -> None:
        """Double every histogram until it covers *space* labels."""
        for entry in self._stats.values():
            if entry.positions is not None:
                entry.positions.ensure_space(space - 1)
        self.position_space = space

    def _count_values(self, node: NodeRecord, sign: int) -> None:
        for key in (node.tag, WILDCARD):
            if node.text:
                texts = self._texts.setdefault(key, Counter())
                texts[node.text] += sign
                if texts[node.text] <= 0:
                    del texts[node.text]
            if node.attributes:
                per_tag = self._attributes.setdefault(key, {})
                for name, value in node.attributes.items():
                    values = per_tag.setdefault(name, Counter())
                    values[value] += sign
                    if values[value] <= 0:
                        del values[value]

    # -- estimator hand-out ------------------------------------------------

    def estimator(self) -> PositionalEstimator:
        """A fresh estimator over the current statistics.

        Created per publish: the estimator memoizes pairwise edge
        estimates, and a fresh instance both clears that memo and
        freezes the (copy-on-write) tag entries it was built over.
        """
        return PositionalEstimator(self._stats)
