"""Durable database directory: ``pages.db`` + ``wal.log``.

:func:`create_database` lays the directory out and persists the
initial document; :func:`open_database` runs crash recovery before
handing the database back, so a directory left behind by a killed
process opens to exactly the committed prefix of its history:

* data pages come from ``pages.db`` (whatever mix of checkpointed and
  incidentally evicted pages the crash left),
* committed transactions found in ``wal.log`` are replayed over them
  (physical redo is idempotent, so double-applied pages are harmless),
* the newest committed CATALOG record supersedes the page-0 catalog,
* a torn log tail and any unfinished transaction are discarded.
"""

from __future__ import annotations

import os

from repro.api import Database
from repro.errors import TransactionError
from repro.document.document import XmlDocument
from repro.document.parser import parse_xml
from repro.storage.disk import FileDisk
from repro.txn.mutate import TransactionManager
from repro.txn.recovery import recover
from repro.txn.wal import WriteAheadLog

PAGES_FILE = "pages.db"
WAL_FILE = "wal.log"


def create_database(path: str | os.PathLike,
                    document: XmlDocument | None = None,
                    xml: str | None = None,
                    name: str = "db",
                    **kwargs: object) -> Database:
    """Create a durable database directory holding *document*.

    Exactly one of *document* / *xml* must be given.  The document is
    stored, indexed, and checkpointed (so the directory is immediately
    reopenable), and the returned database carries a transaction
    manager logging to ``wal.log``.
    """
    if (document is None) == (xml is None):
        raise TransactionError(
            "create_database needs exactly one of document= or xml=")
    if xml is not None:
        document = parse_xml(xml, name=name)
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    pages_path = os.path.join(path, PAGES_FILE)
    if os.path.exists(pages_path):
        raise TransactionError(
            f"{pages_path} already exists; use open_database")
    disk = FileDisk(pages_path)
    database = Database.from_document(document, disk=disk, **kwargs)
    database.persist()
    wal = WriteAheadLog(os.path.join(path, WAL_FILE))
    database._txn_manager = TransactionManager(database, wal)
    return database


def open_database(path: str | os.PathLike,
                  **kwargs: object) -> Database:
    """Reopen a database directory, running crash recovery first.

    The :class:`~repro.txn.recovery.RecoveryResult` is available as
    ``database.transactions.last_recovery``.
    """
    path = os.fspath(path)
    pages_path = os.path.join(path, PAGES_FILE)
    if not os.path.exists(pages_path):
        raise TransactionError(f"no database at {path} ({PAGES_FILE} "
                               "missing)")
    disk = FileDisk(pages_path)
    wal = WriteAheadLog(os.path.join(path, WAL_FILE))
    result = recover(disk, wal)
    database = Database.open(disk, catalog=result.catalog_payload,
                             **kwargs)
    manager = TransactionManager(
        database, wal,
        next_txn_id=max(result.committed, default=0) + 1)
    manager.last_recovery = result
    manager.metrics.recovery_seconds += result.seconds
    database._txn_manager = manager
    return database
