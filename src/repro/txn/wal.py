"""Append-only, CRC-framed write-ahead log of page redo records.

Every frame is ``magic | type | payload-length | crc32(payload) |
payload``.  A transaction appends BEGIN, one PAGE record per page image
it produced, optionally a CATALOG record carrying the new root-catalog
payload, and finally COMMIT — at which point the log is flushed and
fsync'd, making the commit durable *before* any data page reaches the
pages file.  Recovery (:mod:`repro.txn.recovery`) replays committed
transactions forward and discards any torn tail: a frame whose header,
payload, or checksum is incomplete marks the crash point, and
everything from there on is ignored and truncated away.

A CHECKPOINT record is appended after the pages file itself has been
flushed, fsync'd, and re-anchored (catalog on page 0); the log can then
be truncated to empty, bounding recovery work.

With ``path=None`` the log lives in a :class:`io.BytesIO` — used by the
in-memory engine and by the crash-injection tests, which snapshot the
buffer and truncate it at arbitrary offsets to simulate torn writes.
"""

from __future__ import annotations

import io
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import StorageError
from repro.obs.registry import BucketRecorder
from repro.storage.disk import PAGE_SIZE

_MAGIC = b"WL"
# frame header: magic | record type | payload length | payload crc32
_HEADER = struct.Struct("<2sBII")
_TXN = struct.Struct("<Q")
_TXN_PAGE = struct.Struct("<QI")

BEGIN = 1
PAGE = 2
CATALOG = 3
COMMIT = 4
CHECKPOINT = 5

_RECORD_NAMES = {
    BEGIN: "BEGIN",
    PAGE: "PAGE",
    CATALOG: "CATALOG",
    COMMIT: "COMMIT",
    CHECKPOINT: "CHECKPOINT",
}


@dataclass(frozen=True)
class WalRecord:
    """One decoded log frame.

    ``offset`` / ``end_offset`` delimit the full frame (header
    included) in the log; the crash-injection harness truncates at
    these boundaries to simulate a crash between any two writes.
    """

    type: int
    payload: bytes
    offset: int
    end_offset: int

    @property
    def type_name(self) -> str:
        return _RECORD_NAMES.get(self.type, f"UNKNOWN({self.type})")

    @property
    def txn_id(self) -> int | None:
        if self.type in (BEGIN, PAGE, CATALOG, COMMIT):
            return _TXN.unpack_from(self.payload)[0]
        return None

    @property
    def page_id(self) -> int | None:
        if self.type == PAGE:
            return _TXN_PAGE.unpack_from(self.payload)[1]
        return None

    @property
    def page_image(self) -> bytes | None:
        if self.type == PAGE:
            return self.payload[_TXN_PAGE.size:]
        return None

    def json_payload(self) -> Any:
        """Decode the JSON body of a CATALOG or CHECKPOINT record."""
        if self.type == CATALOG:
            return json.loads(self.payload[_TXN.size:].decode("utf-8"))
        if self.type == CHECKPOINT:
            return json.loads(self.payload.decode("utf-8"))
        raise StorageError(
            f"record type {self.type_name} carries no JSON payload")


#: fsync-latency bucket bounds (seconds): sub-millisecond SSD syncs
#: through pathological multi-second stalls.
FSYNC_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


@dataclass
class WalStats:
    """Lifetime counters of one log handle (reported via obs gauges).

    ``sync_seconds`` / ``last_sync_seconds`` time the fsync calls (the
    commit durability point — the write path's dominant latency), and
    ``fsync_latency`` accumulates the same observations into
    Prometheus-shaped cumulative buckets for the service collector to
    mirror into a registry histogram.
    """

    records_written: int = 0
    bytes_written: int = 0
    syncs: int = 0
    commits: int = 0
    checkpoints: int = 0
    truncations: int = 0
    sync_seconds: float = 0.0
    last_sync_seconds: float = 0.0
    records_by_type: dict = field(default_factory=dict)
    fsync_latency: BucketRecorder = field(
        default_factory=lambda: BucketRecorder(FSYNC_BUCKETS))

    def _count(self, record_type: int, size: int) -> None:
        self.records_written += 1
        self.bytes_written += size
        name = _RECORD_NAMES.get(record_type, str(record_type))
        self.records_by_type[name] = self.records_by_type.get(name, 0) + 1

    def _time_sync(self, seconds: float) -> None:
        self.syncs += 1
        self.sync_seconds += seconds
        self.last_sync_seconds = seconds
        self.fsync_latency.observe(seconds)


class WriteAheadLog:
    """Append-only redo log with torn-tail-tolerant replay."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self._path = os.fspath(path) if path is not None else None
        if self._path is None:
            self._file: io.IOBase = io.BytesIO()
        else:
            # append-preserving open: recovery needs the existing tail
            mode = "r+b" if os.path.exists(self._path) else "w+b"
            self._file = open(self._path, mode)
        self._file.seek(0, os.SEEK_END)
        self._closed = False
        self.stats = WalStats()

    # -- plumbing ----------------------------------------------------------

    @property
    def path(self) -> str | None:
        return self._path

    @property
    def size(self) -> int:
        self._check_open()
        return self._file.seek(0, os.SEEK_END)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("write-ahead log is closed")

    def _append(self, record_type: int, payload: bytes) -> int:
        self._check_open()
        frame = _HEADER.pack(_MAGIC, record_type, len(payload),
                             zlib.crc32(payload)) + payload
        offset = self._file.seek(0, os.SEEK_END)
        self._file.write(frame)
        self.stats._count(record_type, len(frame))
        return offset

    def sync(self) -> None:
        """Flush and fsync the log (the commit durability point)."""
        self._check_open()
        started = time.perf_counter()
        self._file.flush()
        if self._path is not None:
            os.fsync(self._file.fileno())
        self.stats._time_sync(time.perf_counter() - started)

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- record appenders --------------------------------------------------

    def append_begin(self, txn_id: int) -> int:
        return self._append(BEGIN, _TXN.pack(txn_id))

    def append_page(self, txn_id: int, page_id: int, image: bytes) -> int:
        if len(image) != PAGE_SIZE:
            raise StorageError(
                f"page image must be exactly {PAGE_SIZE} bytes, "
                f"got {len(image)}")
        return self._append(PAGE, _TXN_PAGE.pack(txn_id, page_id) + image)

    def append_catalog(self, txn_id: int, payload: dict) -> int:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return self._append(CATALOG, _TXN.pack(txn_id) + body)

    def append_commit(self, txn_id: int, durable: bool = True) -> int:
        """Append COMMIT and (by default) fsync — the durability point."""
        offset = self._append(COMMIT, _TXN.pack(txn_id))
        if durable:
            self.sync()
        self.stats.commits += 1
        return offset

    def append_checkpoint(self, payload: dict) -> int:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        offset = self._append(CHECKPOINT, body)
        self.sync()
        self.stats.checkpoints += 1
        return offset

    # -- replay ------------------------------------------------------------

    def replay(self) -> Iterator[WalRecord]:
        """Yield every intact record in log order, stopping at a torn tail.

        A short header, short payload, bad magic, unknown type, or CRC
        mismatch all mark the crash point: replay ends there without
        raising, and :attr:`torn_offset` records where the valid prefix
        ends (``None`` when the whole log was intact).
        """
        self._check_open()
        self.torn_offset: int | None = None
        end = self._file.seek(0, os.SEEK_END)
        offset = 0
        while offset < end:
            self._file.seek(offset)
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                self.torn_offset = offset
                return
            magic, record_type, length, crc = _HEADER.unpack(header)
            if magic != _MAGIC or record_type not in _RECORD_NAMES:
                self.torn_offset = offset
                return
            payload = self._file.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                self.torn_offset = offset
                return
            next_offset = offset + _HEADER.size + length
            yield WalRecord(record_type, payload, offset, next_offset)
            offset = next_offset
        self.torn_offset = None

    def record_boundaries(self) -> list[int]:
        """Offsets of every intact frame boundary (crash-test probe points).

        Returns ``[0, end_of_record_1, end_of_record_2, ...]`` — every
        offset at which truncating the log is equivalent to a crash
        exactly between two record writes.
        """
        boundaries = [0]
        for record in self.replay():
            boundaries.append(record.end_offset)
        return boundaries

    # -- maintenance -------------------------------------------------------

    def truncate(self, size: int = 0) -> None:
        """Cut the log to *size* bytes (0 after a checkpoint)."""
        self._check_open()
        self._file.seek(size)
        self._file.truncate(size)
        self._file.flush()
        if self._path is not None:
            os.fsync(self._file.fileno())
        self.stats.truncations += 1

    def raw_bytes(self) -> bytes:
        """The entire log image (crash-injection snapshot helper)."""
        self._check_open()
        self._file.seek(0)
        return self._file.read()

    def restore_bytes(self, image: bytes) -> None:
        """Replace the log contents wholesale (crash-injection helper)."""
        self._check_open()
        self._file.seek(0)
        self._file.truncate(0)
        self._file.write(image)
        self._file.flush()
