"""Gapped region labels for incremental document updates.

The engines and the estimator only require of region labels that

* starts are unique and document-ordered,
* a node's ``(start, end]`` interval encloses exactly its subtree, and
* ``node_id == start``.

Nothing requires the labels to be *dense* — so the write path spreads
them out.  A subtree of ``n`` nodes placed into a free label range of
``capacity`` positions gets a gap ``g = max(1, capacity // (n + 1))``:
node ``i`` (pre-order) starts at ``base + i*g`` and a node whose last
pre-order descendant is ``j`` ends at ``base + j*g + g - 1``.  Each
node therefore owns ``g - 1`` spare positions after its start, and the
range keeps ``capacity - n*g`` spare positions at its tail, so later
inserts usually find room without touching any existing label.

When a range *is* exhausted, the transaction relabels the smallest
enclosing subtree whose span has room (escalating toward the root,
whose span can always grow — extending ``root.end`` renumbers nobody)
and logs the relabel through the same WAL/commit machinery as any
other mutation.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence

from repro.errors import TransactionError
from repro.document.node import NodeRecord, Region

#: default spread for appends into an unbounded range (under the root).
DEFAULT_GAP = 8


def pick_gap(capacity: int, count: int) -> int | None:
    """The gap for *count* labels in *capacity* positions, or ``None``.

    ``None`` means the range cannot hold the labels even densely and
    the caller must relabel a larger enclosing range.  Otherwise the
    chosen gap leaves roughly one node's worth of slack at the tail:
    ``count * gap <= capacity`` always holds.
    """
    if count < 1:
        raise TransactionError("cannot label an empty subtree")
    if capacity < count:
        return None
    return max(1, capacity // (count + 1))


def relabel(nodes: Sequence[NodeRecord], base: int, gap: int,
            level_of_top: int, parent_of_top: int) -> list[NodeRecord]:
    """Re-label a document-ordered subtree forest with gapped positions.

    *nodes* must be complete subtrees in document order (their current
    labels define the structure; they need not be dense).  Top-level
    nodes — those whose parent lies outside *nodes* — are re-parented
    to *parent_of_top* and assigned level ``level_of_top``, with their
    descendants shifted accordingly.  Node ``i`` starts at
    ``base + i*gap`` and ends at the last label owned by its last
    pre-order descendant, so nesting is preserved exactly.
    """
    if gap < 1:
        raise TransactionError(f"label gap must be >= 1, got {gap}")
    old_starts = [node.start for node in nodes]
    if old_starts != sorted(set(old_starts)):
        raise TransactionError(
            "subtree nodes must be document-ordered and unique")
    inside = set(old_starts)
    old_to_new = {start: base + index * gap
                  for index, start in enumerate(old_starts)}
    # index of each node's last pre-order descendant (itself if a leaf)
    last_descendant = [bisect_right(old_starts, node.end) - 1
                       for node in nodes]
    results: list[NodeRecord] = []
    # the level shift of the enclosing forest root, scoped by its
    # (old) subtree end — forest roots are disjoint, so at most one
    # entry is ever live, but a stack keeps the scoping explicit.
    shift_scope: list[tuple[int, int]] = []
    for index, node in enumerate(nodes):
        while shift_scope and node.start > shift_scope[-1][0]:
            shift_scope.pop()
        if node.parent_id not in inside:
            shift = level_of_top - node.level
            shift_scope.append((node.end, shift))
            parent = parent_of_top
        else:
            if not shift_scope:
                raise TransactionError(
                    f"node {node.start} is not covered by any subtree "
                    "root in the forest")
            shift = shift_scope[-1][1]
            parent = old_to_new[node.parent_id]
        new_start = base + index * gap
        new_end = base + last_descendant[index] * gap + gap - 1
        results.append(NodeRecord(
            node_id=new_start, tag=node.tag,
            region=Region(new_start, new_end, node.level + shift),
            parent_id=parent, text=node.text,
            attributes=dict(node.attributes)))
    return results
