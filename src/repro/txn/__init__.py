"""Transactional write path: WAL, recovery, incremental mutation.

This package turns the load-once database into one that serves heavy
mutable traffic:

* :mod:`repro.txn.wal` — an append-only, CRC-framed write-ahead log of
  page-granularity redo records, fsync'd on commit.
* :mod:`repro.txn.recovery` — ARIES-lite redo-on-open: replay committed
  transactions, discard torn tails.
* :mod:`repro.txn.labels` — gapped region labels, so subtree inserts
  rarely renumber existing nodes (and relabel locally when they must).
* :mod:`repro.txn.mutate` — the document mutation API
  (``insert_subtree`` / ``delete_subtree`` / ``append_document``) with
  copy-on-write storage maintenance and snapshot-isolated publication.
* :mod:`repro.txn.stats` — incremental histogram deltas feeding the
  cardinality estimator without a full statistics rebuild.
* :mod:`repro.txn.db` — the durable directory layout
  (``pages.db`` + ``wal.log``) behind ``create_database`` /
  ``open_database``.
"""

from repro.txn.db import create_database, open_database
from repro.txn.mutate import Transaction, TransactionManager
from repro.txn.recovery import RecoveryResult, recover
from repro.txn.wal import WalRecord, WalStats, WriteAheadLog

__all__ = [
    "create_database",
    "open_database",
    "Transaction",
    "TransactionManager",
    "RecoveryResult",
    "recover",
    "WalRecord",
    "WalStats",
    "WriteAheadLog",
]
