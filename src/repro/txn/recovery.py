"""ARIES-lite redo-on-open: replay committed transactions, drop torn tails.

The write path never overwrites a page referenced by the last durable
catalog (copy-on-write commits, see :mod:`repro.txn.mutate`), so
recovery needs only physical *redo* — no undo pass:

1. Scan the log front-to-back, buffering each transaction's PAGE and
   CATALOG records under its txn id.
2. On COMMIT, replay that transaction's page images into the pages
   file (idempotent: rewriting a page with the same image is a no-op)
   and adopt its CATALOG payload as the current root catalog.
3. A transaction with no COMMIT by end-of-log — including everything
   after a torn frame — never happened: its pages were unreferenced
   scratch space, so discarding the records suffices.

The last adopted CATALOG payload (or, when the log holds none, the
page-0 catalog written by the previous checkpoint) tells the opener
which pages hold the element store and posting chains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.txn import wal as _wal
from repro.txn.wal import WalRecord, WriteAheadLog
from repro.storage.disk import DiskManager
from repro.storage.pages import Page


@dataclass
class RecoveryResult:
    """Outcome of one redo pass, surfaced via obs metrics and the CLI."""

    #: catalog payload of the last committed transaction, or ``None``
    #: when the log held no committed CATALOG (use the page-0 catalog).
    catalog_payload: dict | None = None
    #: txn ids replayed, in commit order.
    committed: list[int] = field(default_factory=list)
    #: txn ids begun but never committed (work discarded).
    discarded: list[int] = field(default_factory=list)
    #: byte offset of the torn tail, or ``None`` if the log was intact.
    torn_offset: int | None = None
    #: number of page images written back during redo.
    replayed_pages: int = 0
    #: log bytes scanned (intact prefix).
    scanned_bytes: int = 0
    #: wall seconds the redo pass took (surfaced as a registry gauge).
    seconds: float = 0.0

    @property
    def clean(self) -> bool:
        """True when the log was empty or fully intact with no dangling txn."""
        return self.torn_offset is None and not self.discarded


def recover(disk: DiskManager, wal: WriteAheadLog) -> RecoveryResult:
    """Redo committed transactions from *wal* into *disk*.

    Safe to run on a clean log (it replays already-applied images over
    themselves) and on an empty one (no-op).  A torn tail is cut off
    the log before returning — appends always go to the file end, so
    leaving a partial frame in place would strand every later commit
    behind it, unreachable to the next replay.
    """
    started = time.perf_counter()
    result = RecoveryResult()
    # txn id -> buffered (page records, catalog payload)
    in_flight: dict[int, tuple[list[WalRecord], list[WalRecord]]] = {}
    for record in wal.replay():
        result.scanned_bytes = record.end_offset
        if record.type == _wal.BEGIN:
            in_flight[record.txn_id] = ([], [])
        elif record.type == _wal.PAGE:
            pages, _ = in_flight.setdefault(record.txn_id, ([], []))
            pages.append(record)
        elif record.type == _wal.CATALOG:
            _, catalogs = in_flight.setdefault(record.txn_id, ([], []))
            catalogs.append(record)
        elif record.type == _wal.COMMIT:
            pages, catalogs = in_flight.pop(record.txn_id, ([], []))
            for page_record in pages:
                page_id = page_record.page_id
                disk.extend_to(page_id + 1)
                disk.write_page(
                    Page(page_id, bytearray(page_record.page_image)))
                result.replayed_pages += 1
            if catalogs:
                result.catalog_payload = catalogs[-1].json_payload()
            result.committed.append(record.txn_id)
        # CHECKPOINT records carry no redo work: by the time one is
        # written the pages file is already durable and re-anchored.
    result.torn_offset = wal.torn_offset
    result.discarded = sorted(in_flight)
    if result.replayed_pages:
        disk.sync()
    if result.torn_offset is not None:
        wal.truncate(result.torn_offset)
    result.seconds = time.perf_counter() - started
    return result
