"""Public facade: a small native XML database.

:class:`Database` wires the substrates together the way Timber does —
storage manager, buffer pool, element store, tag index, statistics —
and exposes the three operations a user of this library needs:

* :meth:`Database.load` / :meth:`Database.from_xml` — ingest a document
* :meth:`Database.optimize` — run one of the five paper algorithms on a
  pattern (or an XPath string)
* :meth:`Database.execute` / :meth:`Database.query` — run a plan and
  return matches with full execution metrics
* :meth:`Database.query_many` / :meth:`Database.stats` — serve query
  batches concurrently with plan caching, and observe the service
  (latency percentiles, cache hit rate, aggregate engine counters)

Example::

    from repro import Database

    db = Database.from_xml(open("pers.xml").read())
    result = db.query("//manager[.//employee/name]//department/name")
    for binding in result.execution.bindings():
        ...
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.errors import ReproError
from repro.core.cost import CostFactors, CostModel
from repro.core.optimizer import OptimizationResult, get_optimizer
from repro.core.pattern import QueryPattern
from repro.core.plans import PhysicalPlan
from repro.core.random_plans import worst_random_plan
from repro.document.document import XmlDocument
from repro.document.parser import parse_xml
from repro.engine.context import EngineContext
from repro.engine.executor import (ExecutionResult, Executor,
                                   StreamingExecution, validate_engine)
from repro.estimation.estimator import (CardinalityEstimator,
                                        ExactEstimator,
                                        PositionalEstimator)
from repro.obs.explain import ExplainReport, build_analysis
from repro.obs.querylog import QueryLog, build_record
from repro.obs.spans import (Span, TraceContext, Tracer,
                             assign_span_ids)
from repro.service.service import QueryService
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager, InMemoryDisk
from repro.storage.store import ElementStore
from repro.storage.tagindex import TagIndex
from repro.xpath.parser import compile_xpath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.mutate import Transaction, TransactionManager


@dataclass(frozen=True)
class Snapshot:
    """A consistent read view captured under the publish lock.

    Commits publish a fresh store/index/document/estimator quadruple
    atomically (:mod:`repro.txn.mutate`); a snapshot pins one such
    quadruple, so a query planned and executed against it never sees a
    half-published database.  The objects themselves are never mutated
    after publication (copy-on-write), so holding a snapshot costs
    nothing and blocks nobody.
    """

    document: XmlDocument
    index: TagIndex
    store: ElementStore
    estimator: PositionalEstimator
    statistics_epoch: int


@dataclass
class QueryResult:
    """Bundle returned by :meth:`Database.query`."""

    optimization: OptimizationResult
    execution: ExecutionResult

    def __len__(self) -> int:
        return len(self.execution)

    @property
    def plan(self) -> PhysicalPlan:
        return self.optimization.plan

    def explain(self) -> str:
        return self.optimization.explain()


class Database:
    """A single-document native XML database instance."""

    #: plain executions stamp trace ids but do **not** record into
    #: :attr:`tracer` (only ``explain(analyze=True)`` does — asserted
    #: by the tracer-count tests); layers that sample traces per query
    #: (the service) check this flag and record the span themselves.
    #: :class:`~repro.shard.sharded.ShardedDatabase` overrides it.
    records_traces_in_execute = False

    def __init__(self, name: str = "db",
                 disk: DiskManager | None = None,
                 buffer_capacity: int = 256,
                 cost_factors: CostFactors | None = None,
                 histogram_grid: int = 16,
                 engine: str = "block",
                 query_log: QueryLog | None = None,
                 service_options: dict | None = None) -> None:
        #: default execution mode: "block" (columnar, cached posting
        #: decode + skip-ahead joins) or "tuple" (Volcano iterators).
        #: Both produce identical results and cost-model counters.
        self.engine = validate_engine(engine)
        self.name = name
        self.disk = disk or InMemoryDisk()
        self.pool = BufferPool(self.disk, capacity=buffer_capacity)
        if self.disk.page_count == 0:
            # page 0 anchors the catalog so the database can be
            # reopened from its pages alone (see Database.open)
            from repro.storage.catalog import reserve_catalog_page

            reserve_catalog_page(self.pool)
        self.store = ElementStore(self.pool)
        self.index = TagIndex(self.pool)
        self.cost_factors = cost_factors or CostFactors()
        self.cost_model = CostModel(self.cost_factors)
        self.histogram_grid = histogram_grid
        self.document: XmlDocument | None = None
        self._estimator: PositionalEstimator | None = None
        self._exact_estimator: ExactEstimator | None = None
        #: bumped whenever the document (and thus the statistics the
        #: optimizer plans with) changes; part of every plan-cache key.
        self.statistics_epoch = 0
        self._service: "QueryService | None" = None
        #: keyword arguments for the lazily built :class:`QueryService`
        #: (worker count, slow-query threshold/log bound, …).
        self.service_options = dict(service_options or {})
        #: optional persistent query log; every :meth:`execute` appends
        #: one record (see :meth:`attach_query_log`).
        self.query_log = query_log
        #: bounded ring of query span trees recorded by
        #: :meth:`explain` with ``analyze=True``.
        self.tracer = Tracer()
        #: guards the atomic swap of store/index/document/estimator at
        #: commit publication; readers take it only for the instant of
        #: :meth:`read_snapshot`.
        self._publish_lock = threading.RLock()
        self._txn_manager: "TransactionManager | None" = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_xml(cls, text: str, name: str = "db",
                 **kwargs: object) -> "Database":
        """Parse XML text and load it into a fresh database."""
        database = cls(name=name, **kwargs)  # type: ignore[arg-type]
        database.load(parse_xml(text, name=name))
        return database

    @classmethod
    def from_document(cls, document: XmlDocument,
                      **kwargs: object) -> "Database":
        """Load an already-built document into a fresh database."""
        database = cls(name=document.name, **kwargs)  # type: ignore[arg-type]
        database.load(document)
        return database

    def load(self, document: XmlDocument) -> None:
        """Ingest *document*: store records, build the tag index and
        the positional-histogram statistics."""
        if self.document is not None:
            raise ReproError(
                "database already holds a document; create a new "
                "Database to load different data")
        self.store.store_document(document)
        self.index.index_document(document)
        self.document = document
        if self.name == "db":  # adopt the document's name by default
            self.name = document.name
        self._estimator = PositionalEstimator.from_document(
            document, grid=self.histogram_grid)
        self._exact_estimator = None
        self.statistics_epoch += 1
        if self._service is not None:
            self._service.invalidate()

    def reload(self, document: XmlDocument) -> None:
        """Replace the loaded document.

        Rebuilds the element store, tag index and statistics from
        *document*, bumps the statistics epoch and invalidates every
        cached plan — plans costed against the old statistics must
        never serve the new data.
        """
        self._require_document()
        self.pool.clear()
        self.store = ElementStore(self.pool)
        self.index = TagIndex(self.pool)
        self.document = None
        self._estimator = None
        self._exact_estimator = None
        self.load(document)
        if self._txn_manager is not None:
            self._txn_manager.reset_statistics()

    def _require_document(self) -> XmlDocument:
        if self.document is None:
            raise ReproError("no document loaded")
        return self.document

    # -- persistence -----------------------------------------------------------

    def persist(self) -> None:
        """Flush all pages and write the catalog, making the disk
        self-describing: :meth:`Database.open` can rebuild this
        database from the disk alone.

        Ends with a durability barrier: every dirty page is written
        back and the disk is fsync'd, so a crash immediately after
        ``persist()`` returns loses nothing.
        """
        from repro.storage.catalog import write_catalog

        self._require_document()
        write_catalog(self.pool, self.catalog_payload())
        self.pool.flush()
        self.disk.sync()

    def catalog_payload(self) -> dict:
        """The directory state the catalog (and the WAL) persists."""
        payload = {
            "name": self.name,
            "store_pages": self.store.page_ids,
            "index_chains": self.index.chains(),
            "index_counts": self.index.counts(),
            "node_count": self.store.node_count,
        }
        deleted = self.store.deleted_rids()
        if deleted:
            payload["deleted_rids"] = deleted
        return payload

    @classmethod
    def open(cls, disk: DiskManager, catalog: dict | None = None,
             **kwargs: object) -> "Database":
        """Reopen a persisted database from its pages.

        The catalog on page 0 locates the element-store chain and the
        tag-index chains; the node table and statistics are rebuilt
        with one scan — no XML source required.  Crash recovery passes
        an explicit *catalog* payload (recovered from the write-ahead
        log) that supersedes the — possibly stale — page-0 copy.
        """
        from repro.storage.catalog import read_catalog

        database = cls(disk=disk, **kwargs)  # type: ignore[arg-type]
        payload = catalog if catalog is not None \
            else read_catalog(database.pool)
        database.name = payload["name"]
        database.store = ElementStore.attach(
            database.pool, payload["store_pages"],
            deleted=payload.get("deleted_rids", ()))
        database.index = TagIndex.attach(
            database.pool,
            payload["index_chains"], payload["index_counts"])
        # insertion order is document order only until the first
        # subtree mutation; sort by start to restore it
        nodes = sorted(database.store.scan(), key=lambda node: node.start)
        if len(nodes) != payload["node_count"]:
            raise ReproError(
                f"catalog expected {payload['node_count']} nodes, "
                f"store holds {len(nodes)}")
        database.document = XmlDocument(nodes, name=database.name)
        database._estimator = PositionalEstimator.from_document(
            database.document, grid=database.histogram_grid)
        return database

    # -- snapshot isolation ---------------------------------------------------

    def read_snapshot(self) -> Snapshot:
        """Pin a consistent view of the database for one query.

        Taken under the publish lock, so it can never observe a commit
        half-way through its swap; because published objects are
        immutable (commits are copy-on-write), the snapshot stays
        valid for as long as the caller keeps it.
        """
        with self._publish_lock:
            self._require_document()
            assert self.document is not None
            assert self._estimator is not None
            return Snapshot(self.document, self.index, self.store,
                            self._estimator, self.statistics_epoch)

    # -- transactions ---------------------------------------------------------

    @property
    def transactions(self) -> "TransactionManager":
        """The (lazily created) transaction manager.

        Databases opened with :func:`repro.txn.db.open_database` get a
        manager whose write-ahead log lives next to the pages file;
        this default one logs to memory — mutations are atomic and
        snapshot-isolated, durable only until process exit.
        """
        if self._txn_manager is None:
            from repro.txn.mutate import TransactionManager

            self._require_document()
            self._txn_manager = TransactionManager(self)
        return self._txn_manager

    @contextmanager
    def transaction(self) -> "Iterator[Transaction]":
        """Run a transaction: commits on clean exit, aborts on error.

        ::

            with db.transaction() as txn:
                txn.append_document(parse_xml(more))
        """
        txn = self.transactions.begin()
        try:
            yield txn
        except BaseException:
            if txn.status == "open":
                self.transactions.abort(txn)
            raise
        if txn.status == "open":
            txn.commit()

    def checkpoint(self) -> int:
        """Make all committed work durable in the pages file and reset
        the write-ahead log; returns the log bytes dropped."""
        return self.transactions.checkpoint()

    # -- statistics ----------------------------------------------------------

    @property
    def estimator(self) -> CardinalityEstimator:
        """The positional-histogram estimator (paper configuration)."""
        self._require_document()
        assert self._estimator is not None
        return self._estimator

    @property
    def exact_estimator(self) -> ExactEstimator:
        """Ground-truth estimator (built lazily; used for calibration)."""
        document = self._require_document()
        if self._exact_estimator is None:
            self._exact_estimator = ExactEstimator(document)
        return self._exact_estimator

    # -- optimization & execution -----------------------------------------------

    def compile(self, query: str | QueryPattern) -> QueryPattern:
        """Accept an XPath string or an already-built pattern."""
        if isinstance(query, QueryPattern):
            return query
        return compile_xpath(query)

    def warm_statistics(self, query: str | QueryPattern) -> None:
        """Precompute the statistics a pattern's optimization needs.

        Pairwise histogram estimates are memoized inside the estimator;
        benchmark harnesses call this before timing optimizers so that
        whichever algorithm runs first is not charged the one-time
        statistics derivation.
        """
        pattern = self.compile(query)
        estimator = self.estimator
        for node in pattern.nodes:
            estimator.node_cardinality(node)
        for edge in pattern.edges:
            estimator.edge_cardinality(pattern, edge.parent, edge.child)

    def optimize(self, query: str | QueryPattern,
                 algorithm: str = "DPP",
                 exact: bool = False,
                 **options: object) -> OptimizationResult:
        """Choose a plan with one of the five paper algorithms.

        *algorithm* is a paper name: ``DP``, ``DPP``, ``DPP'``,
        ``DPAP-EB``, ``DPAP-LD`` or ``FP``.  Extra options are passed
        to the optimizer (e.g. ``expansion_bound`` for DPAP-EB).
        With ``exact=True`` the optimizer sees ground-truth pairwise
        cardinalities instead of histogram estimates.
        """
        pattern = self.compile(query)
        optimizer = get_optimizer(algorithm, cost_model=self.cost_model,
                                  **options)
        estimator = self.exact_estimator if exact else self.estimator
        return optimizer.optimize(pattern, estimator)

    def execute(self, plan: PhysicalPlan, pattern: QueryPattern,
                engine: str | None = None,
                spans: bool = False,
                algorithm: str = "",
                trace_context: TraceContext | None = None
                ) -> ExecutionResult:
        """Run a physical plan against the stored document.

        *engine* overrides the database default for this run
        (``"block"`` or ``"tuple"``; see :data:`Database.engine`).
        With ``spans=True`` the run records a per-operator span tree
        (returned on :attr:`ExecutionResult.span`).  *trace_context*
        names the trace a span tree should join (a caller-propagated
        id, e.g. from an ``X-Trace-Id`` request header) and forces
        spans on; without it traced runs mint a fresh id.

        When a query log is attached every execution appends one
        record; the log's trace sampling may force spans on so the
        record carries per-operator estimate-vs-actual detail.
        *algorithm* only annotates that record (``Database.query`` and
        the query service pass it through).
        """
        snapshot = self.read_snapshot()
        log = self.query_log
        trace = (spans or trace_context is not None
                 or (log is not None and log.want_span()))
        engine = engine or self.engine
        context = EngineContext(snapshot.index, snapshot.store,
                                snapshot.document,
                                factors=self.cost_factors)
        result = Executor(context, pattern, engine=engine).execute(
            plan, spans=trace)
        if result.span is not None and not result.span.trace_id:
            # stamp trace identity once per traced run, so log records
            # and any retained span tree share a joinable trace id
            assign_span_ids(result.span,
                            trace_context.trace_id if trace_context
                            else TraceContext.new().trace_id)
        if log is not None:
            log.record(build_record(
                pattern, plan, result, algorithm=algorithm,
                engine=engine,
                statistics_epoch=snapshot.statistics_epoch,
                factors=self.cost_factors))
        return result

    def stream_execute(self, plan: PhysicalPlan, pattern: QueryPattern,
                       engine: str | None = None,
                       cancel: "Callable[[], bool] | None" = None,
                       spans: bool = False,
                       trace_context: TraceContext | None = None,
                       ) -> "StreamingExecution":
        """Run a plan incrementally, yielding rows as produced.

        The network front-end's serving path: first results of a
        pipelined (FP) plan reach the caller before the plan drains —
        the paper's Sec. 3.4 online-querying property — and *cancel*
        is checked before every row so deadlines stop the operators
        mid-stream.  Always runs the tuple engine (*engine* is
        accepted for facade parity with :class:`ShardedDatabase` and
        ignored: block execution materializes whole results, which is
        exactly what streaming avoids).  Traced streams (``spans=True``
        or a *trace_context*) record their span tree on
        :attr:`tracer` when the stream finishes; streamed runs are not
        appended to the query log, which records only complete
        executions.
        """
        del engine  # facade parity; streaming always pipelines tuples
        snapshot = self.read_snapshot()
        context = EngineContext(snapshot.index, snapshot.store,
                                snapshot.document,
                                factors=self.cost_factors)
        executor = Executor(context, pattern, engine="tuple")
        trace = spans or trace_context is not None

        def record_trace(stream: "StreamingExecution") -> None:
            span = stream.span
            if span is None:
                return
            if not span.trace_id:
                assign_span_ids(span,
                                trace_context.trace_id if trace_context
                                else TraceContext.new().trace_id)
            self.tracer.record(span)

        return executor.stream(plan, cancel=cancel, spans=trace,
                               on_finish=record_trace if trace else None)

    def query(self, query: str | QueryPattern,
              algorithm: str = "DPP", engine: str | None = None,
              **options: object) -> QueryResult:
        """Optimize then execute in one call."""
        pattern = self.compile(query)
        optimization = self.optimize(pattern, algorithm=algorithm,
                                     **options)
        execution = self.execute(optimization.plan, pattern,
                                 engine=engine, algorithm=algorithm)
        return QueryResult(optimization=optimization, execution=execution)

    def explain(self, query: str | QueryPattern,
                algorithm: str = "DPP", analyze: bool = False,
                engine: str | None = None,
                plan_space: bool = False, top_k: int = 3,
                **options: object) -> ExplainReport:
        """EXPLAIN (ANALYZE): the chosen plan, optionally annotated
        with measured per-operator cardinality, cost and wall time.

        With ``analyze=True`` the plan is executed under tracing and
        the report carries, for each operator, estimated vs. actual
        output cardinality and cost with their Q-errors, plus the
        operator's exact share of every cost-model counter (the shares
        sum exactly to the run's :class:`ExecutionMetrics`).  The
        query-level span tree (parse / optimize / execute stages) is
        recorded on :attr:`Database.tracer`.

        With ``plan_space=True`` the optimization records its search
        space and the report carries a
        :class:`~repro.obs.planspace.PlanSpaceReport`: the *top_k*
        cheapest alternative plans with cost deltas, the pruning
        taxonomy, memo size, and why the winner won.
        """
        engine = validate_engine(engine or self.engine)
        started = time.perf_counter()
        pattern = self.compile(query)
        parse_seconds = time.perf_counter() - started
        label = query if isinstance(query, str) else repr(pattern)
        recorder = None
        if plan_space:
            from repro.core.planspace import PlanSpaceRecorder

            recorder = PlanSpaceRecorder()
            options = dict(options)
            options["planspace"] = recorder
        optimization = self.optimize(pattern, algorithm=algorithm,
                                     **options)
        report = ExplainReport(query=label, algorithm=algorithm,
                               engine=engine, optimization=optimization,
                               parse_seconds=parse_seconds)
        if not analyze:
            self._attach_plan_space(report, recorder, label, top_k)
            return report
        execution = self.execute(optimization.plan, pattern,
                                 engine=engine, spans=True)
        assert execution.span is not None
        report.analyze = True
        report.execution = execution
        report.root = build_analysis(optimization.plan, execution.span,
                                     pattern)
        query_span = Span("query", detail=label)
        parse_span = Span("parse")
        parse_span.seconds = parse_seconds
        optimize_span = Span("optimize", detail=f"optimize[{algorithm}]")
        optimize_span.seconds = optimization.report.optimization_seconds
        execute_span = Span("execute", detail=f"execute[{engine}]")
        execute_span.seconds = execution.metrics.wall_seconds
        execute_span.output_rows = len(execution)
        execute_span.children.append(execution.span)
        query_span.children = [parse_span, optimize_span, execute_span]
        query_span.seconds = sum(child.seconds
                                 for child in query_span.children)
        query_span.output_rows = len(execution)
        # keep the trace id execute() stamped (the query-log record
        # already carries it); re-stamping the whole tree under it is
        # idempotent and gives the wrapper stages proper span ids
        assign_span_ids(query_span,
                        execution.span.trace_id
                        or TraceContext.new().trace_id)
        report.span = query_span
        self.tracer.record(query_span)
        self._attach_plan_space(report, recorder, label, top_k)
        return report

    @staticmethod
    def _attach_plan_space(report: ExplainReport, recorder,
                           label: str, top_k: int) -> None:
        """Render a filled recorder onto *report* (no-op without one)."""
        if recorder is None:
            return
        from repro.obs.planspace import build_plan_space_report

        report.plan_space = build_plan_space_report(
            recorder, query=label, top_k=top_k,
            trace_id=report.trace_id)

    def whatif(self, query: str | QueryPattern,
               algorithm: str = "DPP",
               factors: "CostFactors | None" = None,
               tag_scale: "dict[str, float] | None" = None,
               exact: bool = False,
               force_plan: str | None = None):
        """Re-optimize *query* under hypothetical conditions.

        Compares the current winner with the plan chosen under any
        combination of replacement cost *factors*, per-tag cardinality
        scaling (``tag_scale={"item": 10.0}``), ground-truth
        statistics (``exact=True``), or a *force_plan* canonical
        digest priced as-if chosen.  Nothing is mutated: the plan
        cache, statistics epoch, and live cost factors are untouched.
        Returns a :class:`~repro.obs.planspace.WhatIfResult`.
        """
        from repro.obs.planspace import run_whatif

        return run_whatif(self, query, algorithm=algorithm,
                          factors=factors, tag_scale=tag_scale,
                          exact=exact, force_plan=force_plan)

    # -- cost-model control ------------------------------------------------

    def set_cost_factors(self, factors: CostFactors) -> None:
        """Swap the cost-model weight factors at runtime.

        Installs *factors* (typically learned by
        :mod:`repro.obs.calibrate`) on the shared :class:`CostModel`,
        so every subsequent optimization prices plans with them, and
        bumps the statistics epoch: plans cached under the old factors
        were costed in a different currency and must never be reused,
        exactly as after a document reload.  The service's aggregate
        engine counters are re-expressed so merging runs priced with
        the new factors keeps working.
        """
        if factors == self.cost_factors:
            return
        self.cost_factors = factors
        self.cost_model.set_factors(factors)
        self.statistics_epoch += 1
        if self._service is not None:
            self._service.on_cost_factors_changed(factors)

    # -- query logging -----------------------------------------------------

    def attach_query_log(self, log: QueryLog | None) -> None:
        """Attach (or with ``None`` detach) a persistent query log.

        From the next :meth:`execute` on, every run appends one record
        (asynchronously in file mode); the log's ``trace_sample``
        controls how often runs are traced for per-operator detail.
        """
        self.query_log = log

    # -- serving -----------------------------------------------------------

    @property
    def service(self) -> QueryService:
        """The (lazily created) plan-caching query service.

        Construction keywords — worker count, slow-query threshold and
        slow-log bound, registry — come from
        :attr:`Database.service_options`.
        """
        if self._service is None:
            self._service = QueryService(self, **self.service_options)
        return self._service

    def query_many(self, queries: Sequence[str | QueryPattern],
                   algorithm: str = "DPP",
                   workers: int | None = None,
                   engine: str | None = None,
                   **options: object) -> list[QueryResult]:
        """Execute a batch of queries concurrently, in input order.

        Optimization is amortized through the service's plan cache:
        repeated (isomorphic) patterns are optimized once per
        statistics epoch, including across threads — cache misses are
        single-flight.  ``workers=None`` uses the service default;
        ``engine`` overrides the database's execution mode.
        """
        return self.service.query_many(queries, algorithm=algorithm,
                                       workers=workers, engine=engine,
                                       **options)

    def stats(self) -> dict[str, object]:
        """Service-level metrics snapshot plus storage statistics.

        Keys: ``queries``, ``errors``, ``latency`` (p50/p95/p99 …),
        ``plan_cache`` (hit rate, size, evictions), ``engine``
        (aggregate cost-model counters), ``statistics_epoch`` (the
        epoch every plan-cache key embeds — diff it across a reload to
        confirm cached plans were invalidated), ``buffer_pool`` and,
        when a document is loaded, ``storage``.
        """
        snapshot = self.service.snapshot()
        snapshot["statistics_epoch"] = self.statistics_epoch
        snapshot["buffer_pool"] = {
            "hits": self.pool.stats.hits,
            "misses": self.pool.stats.misses,
            "evictions": self.pool.stats.evictions,
            "hit_rate": self.pool.stats.hit_rate,
            "resident_pages": len(self.pool),
            "pinned_pages": len(self.pool.pinned_pages()),
        }
        if self.document is not None:
            snapshot["storage"] = self.statistics()
        if self._txn_manager is not None:
            write_path = self._txn_manager.metrics.snapshot()
            write_path["wal_bytes_current"] = self._txn_manager.wal.size
            snapshot["write_path"] = write_path
        return snapshot

    def time_to_first(self, query: str | QueryPattern,
                      algorithm: str = "FP", results: int = 1,
                      **options: object):
        """Optimize, then measure latency to the first *results* tuples.

        Fully-pipelined plans (``algorithm="FP"``) deliver initial
        results without waiting for any sort to complete — the online-
        querying scenario of Sec. 3.4.  Returns a
        :class:`~repro.engine.executor.FirstResultTiming`.
        """
        pattern = self.compile(query)
        optimization = self.optimize(pattern, algorithm=algorithm,
                                     **options)
        snapshot = self.read_snapshot()
        context = EngineContext(snapshot.index, snapshot.store,
                                snapshot.document,
                                factors=self.cost_factors)
        return Executor(context, pattern).time_to_first(
            optimization.plan, results=results)

    def holistic_query(self,
                       query: str | QueryPattern) -> ExecutionResult:
        """Evaluate a pattern with one holistic twig join (TwigStack).

        No join-order optimization is involved: the whole pattern is
        matched by a single multi-way operator — the paper's
        future-work comparison point (Sec. 6, reference [5]).
        """
        from repro.engine.twigstack import holistic_matches

        pattern = self.compile(query)
        snapshot = self.read_snapshot()
        context = EngineContext(snapshot.index, snapshot.store,
                                snapshot.document,
                                factors=self.cost_factors)
        return holistic_matches(pattern, context)

    def value_join(self, left_query: str | QueryPattern,
                   right_query: str | QueryPattern,
                   left_node: int, right_node: int,
                   left_attribute: str = "", right_attribute: str = "",
                   algorithm: str = "DPP"):
        """Join two pattern queries on equal node values (Sec. 6).

        Each side is optimized and executed as a structural-join plan;
        the results are then hash-joined on the text (or *attribute*)
        of the named pattern nodes.  Returns a
        :class:`~repro.engine.valuejoin.ValueJoinResult`.
        """
        from repro.engine.valuejoin import ValueJoin

        document = self._require_document()
        left = self.query(left_query, algorithm=algorithm)
        right = self.query(right_query, algorithm=algorithm)
        join = ValueJoin(document, left_node, right_node,
                         left_attribute=left_attribute,
                         right_attribute=right_attribute)
        return join.join(left.execution, right.execution)

    def bad_plan(self, query: str | QueryPattern, samples: int = 30,
                 seed: int = 0) -> tuple[PhysicalPlan, float]:
        """The worst of *samples* random plans (Table 1's last column)."""
        pattern = self.compile(query)
        return worst_random_plan(pattern, self.estimator, samples=samples,
                                 seed=seed, cost_model=self.cost_model)

    # -- introspection ---------------------------------------------------------

    def statistics(self) -> dict[str, object]:
        """Storage and data statistics for diagnostics.

        Beyond the page counts, ``index`` carries the compressed
        posting accounting: frame bytes on disk and decoded-block
        resident bytes, totals plus per tag (see
        :meth:`~repro.storage.tagindex.TagIndex.storage_stats`).
        """
        document = self._require_document()
        return {
            "nodes": len(document),
            "depth": document.depth(),
            "tags": len(document.tags()),
            "store_pages": self.store.page_count,
            "index_pages": self.index.page_count(),
            "disk_pages": self.disk.page_count,
            "buffer_capacity": self.pool.capacity,
            "index": self.index.storage_stats(),
        }
