"""Concurrent query service over one :class:`~repro.api.Database`.

The service is the repository's first step from "reproduction" to
"system that serves traffic": it runs batches of queries on a thread
pool, reuses plans through a :class:`~repro.service.cache.PlanCache`,
and keeps service-level observability — latency percentiles, cache
hit rate, and aggregate engine counters merged from each execution's
private :class:`~repro.engine.metrics.ExecutionMetrics`.

Thread-safety contract: the storage layer's buffer pool serializes
frame operations internally; each execution builds its operator tree
against a run-scoped engine context; the only shared mutable service
state (latency reservoir, totals, counters) is guarded by one lock
taken outside the hot operator loops.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.core.pattern import QueryPattern
from repro.engine.metrics import ExecutionMetrics
from repro.obs.registry import MetricsRegistry, SampleReservoir
from repro.obs.slo import DEFAULT_OBJECTIVES, SLObjective, SLOTracker
from repro.service.cache import PlanCache, cache_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import Database, QueryResult
    from repro.obs.explain import ExplainReport

#: Capacity of the latency reservoir backing percentile estimation.
#: Sampling is Algorithm R (uniform over all observations ever made),
#: not drop-oldest truncation — see
#: :class:`~repro.obs.registry.SampleReservoir`.
LATENCY_RESERVOIR = 8192

#: Default slow-query threshold (seconds); queries at or above it land
#: in the slow-query log.  Override per service with the
#: ``slow_query_seconds`` constructor argument or the CLI's
#: ``--slow-query-seconds``.
SLOW_QUERY_SECONDS = 0.25

#: Default bound on the slow-query log (newest entries win).  Override
#: per service with the ``slow_log_capacity`` constructor argument or
#: the CLI's ``--slow-log-capacity``; ``0`` disables retention.
SLOW_LOG_CAPACITY = 32


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, round(fraction * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class QueryService:
    """Plan-caching, thread-pooled query execution for one database."""

    def __init__(self, database: "Database",
                 cache_capacity: int = 256,
                 workers: int = 4,
                 registry: MetricsRegistry | None = None,
                 slow_query_seconds: float = SLOW_QUERY_SECONDS,
                 slow_log_capacity: int = SLOW_LOG_CAPACITY,
                 trace_sample: int = 0,
                 planspace_sample: int = 0,
                 slo_objectives: "tuple[SLObjective, ...] | None"
                 = None) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if slow_log_capacity < 0:
            raise ValueError("slow_log_capacity must be >= 0")
        if trace_sample < 0:
            raise ValueError("trace_sample must be >= 0")
        if planspace_sample < 0:
            raise ValueError("planspace_sample must be >= 0")
        self.database = database
        self.cache = PlanCache(capacity=cache_capacity)
        self.default_workers = workers
        self.slow_query_seconds = slow_query_seconds
        self.slow_log_capacity = slow_log_capacity
        #: trace every n-th service query (0 disables): sampled runs
        #: execute with spans on and land in ``database.tracer`` — on a
        #: sharded database that is a stitched cross-process trace.
        self.trace_sample = trace_sample
        #: record the plan space of every n-th plan-cache miss (0
        #: disables): sampled optimizations run with a
        #: :class:`~repro.core.planspace.PlanSpaceRecorder` attached and
        #: the rendered report lands in a bounded ring served by the
        #: ``/planspace`` endpoint of ``stats --listen``.
        self.planspace_sample = planspace_sample
        #: declarative objectives evaluated over every served query.
        self.slo = SLOTracker(slo_objectives or DEFAULT_OBJECTIVES)
        self._mutex = threading.Lock()
        self._latencies = SampleReservoir(LATENCY_RESERVOIR, seed=0)
        self._engine_totals = ExecutionMetrics(
            factors=database.cost_factors)
        self._queries = 0
        self._errors = 0
        self._trace_clock = 0
        self._planspace_clock = 0
        self._planspace_ring: deque[dict[str, object]] = deque(maxlen=16)
        self._querylog_drops_seen = 0
        self._slow_queries: deque[dict[str, object]] = deque(
            maxlen=slow_log_capacity)
        #: per-service registry by default so concurrent databases in
        #: one process (and tests) never share series; pass a shared
        #: registry (e.g. the global one) to aggregate across services.
        self.registry = registry or MetricsRegistry()
        self._queries_total = self.registry.counter(
            "repro_queries_total", "Queries served")
        self._errors_total = self.registry.counter(
            "repro_query_errors_total", "Queries that raised")
        self._slow_total = self.registry.counter(
            "repro_slow_queries_total",
            "Queries slower than the slow-query threshold")
        self._latency_hist = self.registry.histogram(
            "repro_query_seconds", "End-to-end query latency")
        self._ttfr_hist = self.registry.histogram(
            "repro_time_to_first_seconds",
            "Time to the first streamed result row (serving path)")
        self._queue_wait_hist = self.registry.histogram(
            "repro_queue_wait_seconds",
            "Time between batch submission and execution start")
        self._optimize_hist = self.registry.histogram(
            "repro_optimize_seconds",
            "Optimizer time per plan-cache miss, labelled by algorithm")
        self._querylog_dropped = self.registry.counter(
            "repro_querylog_dropped_total",
            "Query-log records lost to a full queue or write errors")
        # optimizer search-work counters, fed from each plan-cache
        # miss's OptimizerReport and labelled by algorithm — cache hits
        # did no search work and contribute nothing
        self._opt_plans_considered = self.registry.counter(
            "repro_optimizer_plans_considered_total",
            "Candidate moves priced by the optimizer, per algorithm")
        self._opt_statuses_generated = self.registry.counter(
            "repro_optimizer_statuses_generated_total",
            "Statuses materialized in the memo table, per algorithm")
        self._opt_statuses_pruned = self.registry.counter(
            "repro_optimizer_statuses_pruned_total",
            "Statuses discarded by the Pruning Rule, per algorithm")
        self._opt_deadends_avoided = self.registry.counter(
            "repro_optimizer_deadends_avoided_total",
            "Deadend statuses never generated (Lookahead Rule), "
            "per algorithm")
        self._opt_memo_hits = self.registry.counter(
            "repro_optimizer_memo_hits_total",
            "Re-derivations of an already-memoized status, per algorithm")
        # write-path histogram families are registered eagerly (their
        # # TYPE lines appear in every scrape) and mirrored from the
        # storage-side BucketRecorders by the collector when a
        # transaction manager exists
        from repro.txn.mutate import COMMIT_BYTE_BUCKETS
        from repro.txn.wal import FSYNC_BUCKETS

        self._fsync_hist = self.registry.histogram(
            "repro_wal_fsync_seconds",
            "WAL fsync latency (the commit durability point)",
            buckets=FSYNC_BUCKETS)
        self._commit_hist = self.registry.histogram(
            "repro_txn_commit_seconds",
            "End-to-end commit latency")
        self._commit_bytes_hist = self.registry.histogram(
            "repro_txn_commit_wal_bytes",
            "WAL bytes appended per commit",
            buckets=COMMIT_BYTE_BUCKETS)
        self.registry.register_collector(self._collect)

    # -- serving ----------------------------------------------------------

    def query(self, query: "str | QueryPattern",
              algorithm: str = "DPP",
              engine: "str | None" = None,
              submitted_at: float | None = None,
              **options: object) -> "QueryResult":
        """Optimize (through the cache) and execute one query.

        ``engine`` picks the execution mode for this run and stays out
        of *options* (which are optimizer arguments and part of the
        plan-cache key — the plan is engine-independent).
        ``submitted_at`` (a ``perf_counter`` reading) is passed by the
        batch path so queue wait — submission to execution start — is
        observable separately from execution time.
        """
        from repro.api import QueryResult

        started = time.perf_counter()
        if submitted_at is not None:
            self._queue_wait_hist.observe(max(0.0,
                                              started - submitted_at))
        traced = self._want_trace()
        try:
            pattern = self.database.compile(query)
            optimization = self.optimize_cached(pattern, algorithm,
                                                **options)
            execution = self.database.execute(optimization.plan, pattern,
                                              engine=engine,
                                              spans=traced,
                                              algorithm=algorithm)
        except BaseException:
            elapsed = time.perf_counter() - started
            with self._mutex:
                self._errors += 1
            self._errors_total.inc()
            self.slo.observe_query(elapsed, error=True)
            raise
        elapsed = time.perf_counter() - started
        span = execution.span
        # a sharded database records its stitched trace inside
        # execute(); a single-node database only stamps trace ids, so
        # the sampled span is retained here
        if (traced and span is not None
                and not getattr(self.database,
                                "records_traces_in_execute", False)):
            self.database.tracer.record(span)
        trace_id = span.trace_id if span is not None else ""
        self.slo.observe_query(elapsed, trace_id=trace_id)
        self._queries_total.inc()
        self._latency_hist.observe(elapsed)
        slow = elapsed >= self.slow_query_seconds
        if slow:
            self._slow_total.inc()
        with self._mutex:
            self._queries += 1
            self._latencies.add(elapsed)
            self._engine_totals.merge(execution.metrics)
            if slow:
                self._slow_queries.append({
                    "query": (query if isinstance(query, str)
                              else repr(query)),
                    "algorithm": algorithm,
                    "engine": engine or self.database.engine,
                    "seconds": elapsed,
                    "rows": len(execution),
                    "trace_id": trace_id,
                })
        return QueryResult(optimization=optimization,
                           execution=execution)

    def observe_served_query(self, seconds: float, *,
                             time_to_first: "float | None" = None,
                             error: bool = False,
                             trace_id: str = "",
                             metrics: "ExecutionMetrics | None" = None,
                             rows: int = 0,
                             query: str = "",
                             algorithm: str = "",
                             engine: str = "") -> None:
        """Fold one externally-executed query into the service totals.

        The network front-end streams executions itself —
        :meth:`query` cannot, it materializes a ``QueryResult`` — and
        reports each finished request here so ``/metrics`` and
        ``/slo`` stay one coherent surface regardless of how the query
        entered the process.  *time_to_first* feeds both the
        ``repro_time_to_first_seconds`` histogram and the TTFR SLO;
        *error* covers failures **and deadline cancellations** (a
        cancelled request burned its latency budget without an
        answer, so the error budget pays).  *metrics* merges engine
        counters from completed streams into the aggregate totals.
        """
        if time_to_first is not None:
            self._ttfr_hist.observe(time_to_first)
        if error:
            with self._mutex:
                self._errors += 1
            self._errors_total.inc()
            self.slo.observe_query(seconds, time_to_first=time_to_first,
                                   error=True, trace_id=trace_id)
            return
        self.slo.observe_query(seconds, time_to_first=time_to_first,
                               trace_id=trace_id)
        self._queries_total.inc()
        self._latency_hist.observe(seconds)
        slow = seconds >= self.slow_query_seconds
        if slow:
            self._slow_total.inc()
        with self._mutex:
            self._queries += 1
            self._latencies.add(seconds)
            if metrics is not None:
                self._engine_totals.merge(metrics)
            if slow:
                self._slow_queries.append({
                    "query": query,
                    "algorithm": algorithm,
                    "engine": engine or self.database.engine,
                    "seconds": seconds,
                    "rows": rows,
                    "trace_id": trace_id,
                })

    def _want_trace(self) -> bool:
        """True when this query is the n-th of a 1-in-n trace sample."""
        if not self.trace_sample:
            return False
        with self._mutex:
            self._trace_clock += 1
            return self._trace_clock % self.trace_sample == 0

    def query_many(self, queries: Sequence["str | QueryPattern"],
                   algorithm: str = "DPP",
                   workers: int | None = None,
                   engine: "str | None" = None,
                   **options: object) -> list["QueryResult"]:
        """Execute a batch of queries, results in input order.

        With ``workers > 1`` the batch runs on a thread pool; repeated
        patterns in the batch are optimized once (misses are
        single-flight in the plan cache).
        """
        workers = self.default_workers if workers is None else workers
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if workers == 1 or len(queries) <= 1:
            return [self.query(query, algorithm=algorithm,
                               engine=engine, **options)
                    for query in queries]
        with ThreadPoolExecutor(
                max_workers=min(workers, len(queries)),
                thread_name_prefix="repro-query") as pool:
            futures = [pool.submit(self.query, query,
                                   algorithm=algorithm, engine=engine,
                                   submitted_at=time.perf_counter(),
                                   **options)
                       for query in queries]
            return [future.result() for future in futures]

    def optimize_cached(self, query: "str | QueryPattern",
                        algorithm: str = "DPP", **options: object):
        """Plan lookup with optimize-on-miss (single-flight).

        Misses record the optimizer's wall time in the
        ``repro_optimize_seconds`` histogram and the search-work
        counters of the ``repro_optimizer_*_total`` families, all
        labelled by algorithm — hits cost a dict probe and are
        deliberately not observed.  With ``planspace_sample`` set,
        every n-th miss also runs with a plan-space recorder attached
        and lands its report in the ring behind :meth:`planspace`.
        """
        pattern = self.database.compile(query)
        key = cache_key(pattern, algorithm, dict(options),
                        self.database.statistics_epoch)

        def compute():
            recorder = None
            run_options = options
            if self._want_planspace():
                from repro.core.planspace import PlanSpaceRecorder

                recorder = PlanSpaceRecorder()
                run_options = dict(options)
                run_options["planspace"] = recorder
            result = self.database.optimize(pattern, algorithm=algorithm,
                                            **run_options)
            report = result.report
            self._optimize_hist.observe(
                report.optimization_seconds, algorithm=algorithm)
            if report.plans_considered:
                self._opt_plans_considered.inc(report.plans_considered,
                                               algorithm=algorithm)
            if report.statuses_generated:
                self._opt_statuses_generated.inc(report.statuses_generated,
                                                 algorithm=algorithm)
            if report.statuses_pruned:
                self._opt_statuses_pruned.inc(report.statuses_pruned,
                                              algorithm=algorithm)
            if report.deadends_avoided:
                self._opt_deadends_avoided.inc(report.deadends_avoided,
                                               algorithm=algorithm)
            if report.memo_hits:
                self._opt_memo_hits.inc(report.memo_hits,
                                        algorithm=algorithm)
            if recorder is not None:
                self._retain_planspace(recorder, pattern, algorithm)
            return result

        return self.cache.get_or_compute(key, pattern, compute)

    def _want_planspace(self) -> bool:
        """True when this miss is the n-th of a 1-in-n planspace sample."""
        if not self.planspace_sample:
            return False
        with self._mutex:
            self._planspace_clock += 1
            return self._planspace_clock % self.planspace_sample == 0

    def _retain_planspace(self, recorder, pattern: QueryPattern,
                          algorithm: str) -> None:
        """Render a sampled recorder into the bounded planspace ring."""
        from repro.obs.planspace import build_plan_space_report

        try:
            report = build_plan_space_report(recorder, query=str(pattern),
                                             top_k=3)
        except Exception:  # diagnostics must never fail the query
            return
        with self._mutex:
            self._planspace_ring.append(report.to_dict())

    def planspace(self, limit: int = 16) -> list[dict[str, object]]:
        """Last *limit* sampled plan-space reports, newest last.

        Backs the ``/planspace`` endpoint of ``stats --listen``; empty
        unless the service was built with ``planspace_sample > 0``.
        """
        if limit < 1:
            raise ValueError("limit must be at least 1")
        with self._mutex:
            return list(self._planspace_ring)[-limit:]

    def explain(self, query: "str | QueryPattern",
                algorithm: str = "DPP", analyze: bool = False,
                engine: "str | None" = None,
                **options: object) -> "ExplainReport":
        """Passthrough to :meth:`Database.explain`.

        EXPLAIN is a diagnostic: it bypasses the plan cache (the
        report must show this optimization's search work, not a cached
        plan's) and does not count toward service query totals.
        """
        return self.database.explain(query, algorithm=algorithm,
                                     analyze=analyze, engine=engine,
                                     **options)

    # -- lifecycle --------------------------------------------------------

    def invalidate(self) -> int:
        """Drop cached plans (called on document reload)."""
        return self.cache.invalidate()

    def on_cost_factors_changed(self, factors) -> None:
        """React to a runtime cost-factor swap on the database.

        Cached plans were costed in the old currency — drop them (the
        epoch bump in ``Database.set_cost_factors`` already makes
        their keys unreachable; invalidating frees the memory now).
        The aggregate engine counters are factor-independent
        measurements, so they are re-expressed under the new factors
        rather than reset — merges of future runs would otherwise
        raise a currency mismatch.
        """
        self.cache.invalidate()
        with self._mutex:
            self._engine_totals.reprice(factors)

    def reset_stats(self) -> None:
        """Zero the latency reservoir, aggregate counters, slow-query
        log and every registry series."""
        with self._mutex:
            self._latencies.clear()
            self._engine_totals = ExecutionMetrics(
                factors=self.database.cost_factors)
            self._queries = 0
            self._errors = 0
            self._slow_queries.clear()
        self.registry.reset()

    # -- observability ----------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Point-in-time service metrics.

        ``latency`` percentiles are in seconds over a uniform
        :data:`LATENCY_RESERVOIR`-sized sample of every query ever
        served (``observed`` counts the full population); ``engine``
        aggregates the per-execution cost-model counters of every
        query served; ``slow_queries`` is the slow-query log, oldest
        first.
        """
        with self._mutex:
            samples = self._latencies.values()
            observed = self._latencies.count
            slow_queries = list(self._slow_queries)
            totals = self._engine_totals
            engine = {
                "index_items": totals.index_items,
                "sort_count": totals.sort_count,
                "buffered_results": totals.buffered_results,
                "stack_tuple_ops": totals.stack_tuple_ops,
                "output_tuples": totals.output_tuples,
                "join_count": totals.join_count,
                "page_reads": totals.page_reads,
                "page_writes": totals.page_writes,
                "simulated_cost": totals.simulated_cost(),
                "wall_seconds": totals.wall_seconds,
            }
            queries = self._queries
            errors = self._errors
        return {
            "queries": queries,
            "errors": errors,
            "latency": {
                "p50_seconds": percentile(samples, 0.50),
                "p95_seconds": percentile(samples, 0.95),
                "p99_seconds": percentile(samples, 0.99),
                "max_seconds": max(samples) if samples else 0.0,
                "mean_seconds": (sum(samples) / len(samples)
                                 if samples else 0.0),
                "samples": len(samples),
                "observed": observed,
            },
            "slow_queries": slow_queries,
            "plan_cache": {
                "size": len(self.cache),
                "capacity": self.cache.capacity,
                **self.cache.stats.snapshot(),
            },
            "engine": engine,
            "slo": self.slo.snapshot(),
        }

    def traces(self, limit: int = 16) -> list[dict[str, object]]:
        """Last *limit* retained traces, newest last, JSON-able.

        Backs the ``/traces`` endpoint of ``stats --listen``: on a
        sharded database each entry is one stitched cross-process
        trace; on a single node, a per-operator span tree.
        """
        if limit < 1:
            raise ValueError("limit must be at least 1")
        tracer = getattr(self.database, "tracer", None)
        if tracer is None:
            return []
        return [span.to_dict() for span in tracer.traces()[-limit:]]

    def _collect(self) -> None:
        """Registry collector: gauges from live pull-style sources.

        Runs before every export, so scrape output always reflects the
        current plan cache, buffer pool and engine totals without any
        instrumentation on their hot paths.
        """
        registry = self.registry
        cache_stats = self.cache.stats
        registry.gauge("repro_plan_cache_size",
                       "Cached plans").set(len(self.cache))
        registry.gauge("repro_plan_cache_hits",
                       "Plan cache hits").set(cache_stats.hits)
        registry.gauge("repro_plan_cache_misses",
                       "Plan cache misses").set(cache_stats.misses)
        registry.gauge("repro_plan_cache_evictions",
                       "Plan cache evictions").set(cache_stats.evictions)
        registry.gauge("repro_plan_cache_hit_rate",
                       "Plan cache hit rate").set(cache_stats.hit_rate)
        # the database duck-type also admits facades without local
        # storage (ShardedDatabase) — skip the gauges they can't back
        pool = getattr(self.database, "pool", None)
        if pool is not None:
            registry.gauge("repro_buffer_pool_hits",
                           "Buffer pool hits").set(pool.stats.hits)
            registry.gauge("repro_buffer_pool_misses",
                           "Buffer pool misses").set(pool.stats.misses)
            registry.gauge("repro_buffer_pool_hit_rate",
                           "Buffer pool hit rate"
                           ).set(pool.stats.hit_rate)
            registry.gauge("repro_buffer_pool_resident_pages",
                           "Pages resident in the buffer pool"
                           ).set(len(pool))
            registry.gauge("repro_buffer_pool_view_misses",
                           "Pool misses served as zero-copy disk views"
                           ).set(pool.stats.view_misses)
        index = getattr(self.database, "index", None)
        if index is not None and hasattr(index, "storage_stats"):
            storage = index.storage_stats()
            compressed_gauge = registry.gauge(
                "repro_index_compressed_bytes",
                "Compressed posting-frame bytes on disk, per tag")
            decoded_gauge = registry.gauge(
                "repro_index_decoded_bytes",
                "Decoded posting-block resident bytes, per tag")
            for tag, entry in storage["per_tag"].items():
                compressed_gauge.set(entry["compressed_bytes"], tag=tag)
                decoded_gauge.set(entry["decoded_bytes"], tag=tag)
            registry.gauge(
                "repro_index_compressed_bytes_total",
                "Compressed posting-frame bytes on disk"
            ).set(storage["compressed_bytes"])
            registry.gauge(
                "repro_index_decoded_bytes_total",
                "Decoded posting-block resident bytes"
            ).set(storage["decoded_bytes"])
        manager = getattr(self.database, "_txn_manager", None)
        if manager is not None:
            txn_gauge = registry.gauge(
                "repro_txn_counter_total",
                "Write-path counters (commits, WAL bytes, relabels, ...)")
            for name, value in manager.metrics.snapshot().items():
                txn_gauge.set(value, counter=name)
            registry.gauge(
                "repro_wal_size_bytes",
                "Current write-ahead log size").set(manager.wal.size)
            # mirror the storage-side bucket recorders into the
            # eagerly-registered histogram families (copied verbatim,
            # never re-observed — the recorders are the truth)
            manager.wal.stats.fsync_latency.mirror_into(self._fsync_hist)
            manager.commit_latency.mirror_into(self._commit_hist)
            manager.commit_bytes.mirror_into(self._commit_bytes_hist)
            recovery = getattr(manager, "last_recovery", None)
            if recovery is not None:
                registry.gauge(
                    "repro_recovery_replayed_pages",
                    "Page images written back by the last WAL redo pass"
                ).set(recovery.replayed_pages)
                registry.gauge(
                    "repro_recovery_seconds",
                    "Wall time of the last WAL redo pass"
                ).set(recovery.seconds)
                registry.gauge(
                    "repro_recovery_clean",
                    "1 when the last recovery found an intact log with "
                    "no dangling transaction"
                ).set(1.0 if recovery.clean else 0.0)
        log = getattr(self.database, "query_log", None)
        if log is not None:
            dropped = log.dropped
            with self._mutex:
                delta = dropped - self._querylog_drops_seen
                self._querylog_drops_seen = dropped
            if delta > 0:
                self._querylog_dropped.inc(delta)
        engine_gauge = registry.gauge(
            "repro_engine_counter_total",
            "Aggregate cost-model counters over all queries served")
        with self._mutex:
            for name, value in self._engine_totals.counters().items():
                engine_gauge.set(value, counter=name)
            registry.gauge(
                "repro_engine_simulated_cost_total",
                "Aggregate simulated cost over all queries served"
            ).set(self._engine_totals.simulated_cost())
        collect_extra = getattr(self.database, "collect_gauges", None)
        if collect_extra is not None:
            collect_extra(registry)
        self.slo.collect(registry)

    def export_metrics(self, fmt: str = "prometheus") -> str:
        """Render the registry: ``"prometheus"`` text or ``"json"``."""
        if fmt == "prometheus":
            return self.registry.to_prometheus()
        if fmt == "json":
            return json.dumps(self.registry.to_dict(), indent=2,
                              sort_keys=True)
        raise ValueError(f"unknown metrics format {fmt!r}; "
                         f"expected 'prometheus' or 'json'")
