"""Concurrent query service over one :class:`~repro.api.Database`.

The service is the repository's first step from "reproduction" to
"system that serves traffic": it runs batches of queries on a thread
pool, reuses plans through a :class:`~repro.service.cache.PlanCache`,
and keeps service-level observability — latency percentiles, cache
hit rate, and aggregate engine counters merged from each execution's
private :class:`~repro.engine.metrics.ExecutionMetrics`.

Thread-safety contract: the storage layer's buffer pool serializes
frame operations internally; each execution builds its operator tree
against a run-scoped engine context; the only shared mutable service
state (latency reservoir, totals, counters) is guarded by one lock
taken outside the hot operator loops.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.core.pattern import QueryPattern
from repro.engine.metrics import ExecutionMetrics
from repro.service.cache import PlanCache, cache_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api import Database, QueryResult

#: Latency samples kept for percentile estimation; older samples are
#: dropped oldest-first once the reservoir is full.
LATENCY_RESERVOIR = 8192


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of *samples* (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, round(fraction * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class QueryService:
    """Plan-caching, thread-pooled query execution for one database."""

    def __init__(self, database: "Database",
                 cache_capacity: int = 256,
                 workers: int = 4) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.database = database
        self.cache = PlanCache(capacity=cache_capacity)
        self.default_workers = workers
        self._mutex = threading.Lock()
        self._latencies: list[float] = []
        self._engine_totals = ExecutionMetrics(
            factors=database.cost_factors)
        self._queries = 0
        self._errors = 0

    # -- serving ----------------------------------------------------------

    def query(self, query: "str | QueryPattern",
              algorithm: str = "DPP",
              engine: "str | None" = None,
              **options: object) -> "QueryResult":
        """Optimize (through the cache) and execute one query.

        ``engine`` picks the execution mode for this run and stays out
        of *options* (which are optimizer arguments and part of the
        plan-cache key — the plan is engine-independent).
        """
        from repro.api import QueryResult

        started = time.perf_counter()
        try:
            pattern = self.database.compile(query)
            optimization = self.optimize_cached(pattern, algorithm,
                                                **options)
            execution = self.database.execute(optimization.plan, pattern,
                                              engine=engine)
        except BaseException:
            with self._mutex:
                self._errors += 1
            raise
        elapsed = time.perf_counter() - started
        with self._mutex:
            self._queries += 1
            self._latencies.append(elapsed)
            if len(self._latencies) > LATENCY_RESERVOIR:
                del self._latencies[:len(self._latencies)
                                    - LATENCY_RESERVOIR]
            self._engine_totals.merge(execution.metrics)
        return QueryResult(optimization=optimization,
                           execution=execution)

    def query_many(self, queries: Sequence["str | QueryPattern"],
                   algorithm: str = "DPP",
                   workers: int | None = None,
                   engine: "str | None" = None,
                   **options: object) -> list["QueryResult"]:
        """Execute a batch of queries, results in input order.

        With ``workers > 1`` the batch runs on a thread pool; repeated
        patterns in the batch are optimized once (misses are
        single-flight in the plan cache).
        """
        workers = self.default_workers if workers is None else workers
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if workers == 1 or len(queries) <= 1:
            return [self.query(query, algorithm=algorithm,
                               engine=engine, **options)
                    for query in queries]
        with ThreadPoolExecutor(
                max_workers=min(workers, len(queries)),
                thread_name_prefix="repro-query") as pool:
            futures = [pool.submit(self.query, query,
                                   algorithm=algorithm, engine=engine,
                                   **options)
                       for query in queries]
            return [future.result() for future in futures]

    def optimize_cached(self, query: "str | QueryPattern",
                        algorithm: str = "DPP", **options: object):
        """Plan lookup with optimize-on-miss (single-flight)."""
        pattern = self.database.compile(query)
        key = cache_key(pattern, algorithm, dict(options),
                        self.database.statistics_epoch)
        return self.cache.get_or_compute(
            key, pattern,
            lambda: self.database.optimize(pattern, algorithm=algorithm,
                                           **options))

    # -- lifecycle --------------------------------------------------------

    def invalidate(self) -> int:
        """Drop cached plans (called on document reload)."""
        return self.cache.invalidate()

    def reset_stats(self) -> None:
        """Zero the latency reservoir and aggregate counters."""
        with self._mutex:
            self._latencies.clear()
            self._engine_totals = ExecutionMetrics(
                factors=self.database.cost_factors)
            self._queries = 0
            self._errors = 0

    # -- observability ----------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """Point-in-time service metrics.

        ``latency`` percentiles are in seconds over the most recent
        :data:`LATENCY_RESERVOIR` queries; ``engine`` aggregates the
        per-execution cost-model counters of every query served.
        """
        with self._mutex:
            samples = list(self._latencies)
            totals = self._engine_totals
            engine = {
                "index_items": totals.index_items,
                "sort_count": totals.sort_count,
                "buffered_results": totals.buffered_results,
                "stack_tuple_ops": totals.stack_tuple_ops,
                "output_tuples": totals.output_tuples,
                "join_count": totals.join_count,
                "page_reads": totals.page_reads,
                "page_writes": totals.page_writes,
                "simulated_cost": totals.simulated_cost(),
                "wall_seconds": totals.wall_seconds,
            }
            queries = self._queries
            errors = self._errors
        return {
            "queries": queries,
            "errors": errors,
            "latency": {
                "p50_seconds": percentile(samples, 0.50),
                "p95_seconds": percentile(samples, 0.95),
                "p99_seconds": percentile(samples, 0.99),
                "max_seconds": max(samples) if samples else 0.0,
                "mean_seconds": (sum(samples) / len(samples)
                                 if samples else 0.0),
                "samples": len(samples),
            },
            "plan_cache": {
                "size": len(self.cache),
                "capacity": self.cache.capacity,
                **self.cache.stats.snapshot(),
            },
            "engine": engine,
        }
