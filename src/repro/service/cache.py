"""Plan cache: amortize optimization across repeated queries.

The paper's headline result is that DPP finds the DP optimum at a
fraction of DP's optimization cost; a serving system amortizes that
cost further by optimizing each distinct pattern *once*.  The cache is
keyed by a **canonical pattern identity** — an id- and order-
independent encoding of tags, predicates, axes, tree shape and the
result-order node — plus the algorithm, its options, and the
database's statistics epoch, so a cached plan is reused only while the
statistics it was costed with are still live.

Because the canonical key identifies patterns up to isomorphism, a hit
may come from a pattern whose nodes are numbered differently (XPath
compilation numbers nodes by traversal order).  The cache then remaps
the stored plan through the pattern isomorphism before handing it out,
so the plan's node ids always match the requesting pattern.

Concurrency: lookups are **single-flight**.  The first thread to miss
on a key optimizes; threads that ask for the same key while that
optimization is in flight wait for it and share the result (counted as
hits — no optimizer ran for them).  Eviction is LRU with a fixed
capacity.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.optimizer import OptimizationResult
from repro.core.pattern import QueryPattern
from repro.core.plans import (IndexScanPlan, PhysicalPlan, SortPlan,
                              StructuralJoinPlan)
from repro.errors import PlanError


# -- canonical pattern identity -----------------------------------------------

def canonical_signature(pattern: QueryPattern) -> tuple:
    """Order- and id-independent identity of *pattern*.

    Like :func:`repro.xpath.render.pattern_signature` but additionally
    marks which node is the pattern's ``order_by`` target, since two
    patterns that differ only in result order need different plans
    (the final ordering constraint changes which sorts are required).
    """
    signatures = _node_signatures(pattern)
    return signatures[pattern.root]


def _node_signatures(pattern: QueryPattern) -> dict[int, tuple]:
    """Per-node canonical signatures, computed bottom-up."""
    signatures: dict[int, tuple] = {}
    # reversed pre-order visits children before parents
    for node_id in reversed(list(pattern.walk_preorder())):
        node = pattern.node(node_id)
        children = tuple(sorted(
            (str(edge.axis), signatures[edge.child])
            for edge in pattern.child_edges(node_id)))
        predicates = tuple(sorted(str(p) for p in node.predicates))
        signatures[node_id] = (node.tag, predicates,
                               node_id == pattern.order_by, children)
    return signatures


def pattern_isomorphism(source: QueryPattern,
                        target: QueryPattern) -> dict[int, int]:
    """A node-id mapping carrying *source* onto *target*.

    Both patterns must have equal canonical signatures.  Children with
    identical subtree signatures are interchangeable, so any signature-
    respecting pairing yields a semantically equivalent plan remap.
    """
    source_sigs = _node_signatures(source)
    target_sigs = _node_signatures(target)
    if source_sigs[source.root] != target_sigs[target.root]:
        raise PlanError("patterns are not isomorphic")
    mapping: dict[int, int] = {}
    stack = [(source.root, target.root)]
    while stack:
        source_id, target_id = stack.pop()
        mapping[source_id] = target_id
        source_children = sorted(
            source.child_edges(source_id),
            key=lambda e: (str(e.axis), source_sigs[e.child]))
        target_children = sorted(
            target.child_edges(target_id),
            key=lambda e: (str(e.axis), target_sigs[e.child]))
        for source_edge, target_edge in zip(source_children,
                                            target_children):
            stack.append((source_edge.child, target_edge.child))
    return mapping


def remap_plan(plan: PhysicalPlan,
               mapping: dict[int, int]) -> PhysicalPlan:
    """Rewrite *plan* with its pattern-node ids sent through *mapping*."""
    if isinstance(plan, IndexScanPlan):
        return IndexScanPlan(mapping[plan.node_id],
                             plan.estimated_cardinality,
                             plan.estimated_cost)
    if isinstance(plan, SortPlan):
        return SortPlan(remap_plan(plan.child, mapping),
                        mapping[plan.by_node],
                        plan.estimated_cardinality, plan.estimated_cost)
    if isinstance(plan, StructuralJoinPlan):
        return StructuralJoinPlan(
            remap_plan(plan.ancestor_plan, mapping),
            remap_plan(plan.descendant_plan, mapping),
            mapping[plan.ancestor_node], mapping[plan.descendant_node],
            plan.axis, plan.algorithm,
            plan.estimated_cardinality, plan.estimated_cost)
    raise PlanError(f"unknown plan node type {type(plan).__name__}")


def canonical_plan_digest(plan: PhysicalPlan,
                          pattern: QueryPattern) -> str:
    """Render *plan* with node ids replaced by canonical node ranks.

    XPath compilation numbers pattern nodes by traversal order, so the
    same logical plan over two isomorphic patterns prints different
    ``signature()`` strings.  Here every node id is replaced by the
    rank of its canonical subtree signature (interchangeable nodes —
    identical signatures — share a rank, which is exactly the freedom
    :func:`pattern_isomorphism` has), making the digest stable across
    renumbering.  The query log stores this digest so the plan auditor
    can replay a recompiled query and compare plans without false
    flips.
    """
    signatures = _node_signatures(pattern)
    ranks = {key: rank for rank, key in enumerate(
        sorted({repr(sig) for sig in signatures.values()}))}
    labels = {node_id: ranks[repr(signatures[node_id])]
              for node_id in signatures}

    def render(node: PhysicalPlan) -> str:
        if isinstance(node, IndexScanPlan):
            return f"scan({labels[node.node_id]})"
        if isinstance(node, SortPlan):
            return f"sort[{labels[node.by_node]}]({render(node.child)})"
        if isinstance(node, StructuralJoinPlan):
            return (f"{node.algorithm.value}"
                    f"[{labels[node.ancestor_node]}{node.axis}"
                    f"{labels[node.descendant_node]}]"
                    f"({render(node.ancestor_plan)},"
                    f"{render(node.descendant_plan)})")
        raise PlanError(f"unknown plan node type {type(node).__name__}")

    return render(plan)


def cache_key(pattern: QueryPattern, algorithm: str,
              options: dict[str, object], epoch: int) -> tuple:
    """The full cache key for one optimization request."""
    return (canonical_signature(pattern), algorithm,
            tuple(sorted(options.items())), epoch)


# -- the cache ----------------------------------------------------------------

@dataclass
class PlanCacheStats:
    """Observable counters for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class _Entry:
    __slots__ = ("pattern", "result")

    def __init__(self, pattern: QueryPattern,
                 result: OptimizationResult) -> None:
        self.pattern = pattern
        self.result = result


@dataclass
class _InFlight:
    """One optimization being computed; waiters block on the event."""

    done: threading.Event = field(default_factory=threading.Event)
    entry: _Entry | None = None
    error: BaseException | None = None


class PlanCache:
    """LRU plan cache with single-flight misses."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise PlanError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._mutex = threading.Lock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._inflight: dict[tuple, _InFlight] = {}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def get_or_compute(
            self, key: Hashable, pattern: QueryPattern,
            compute: Callable[[], OptimizationResult],
    ) -> OptimizationResult:
        """Return the cached plan for *key*, optimizing at most once.

        *compute* runs outside the cache lock; concurrent requests for
        the same key wait for the winner's result instead of
        re-optimizing.
        """
        while True:
            with self._mutex:
                entry = self._entries.get(key)
                if entry is not None:
                    self.stats.hits += 1
                    self._entries.move_to_end(key)
                    return self._adapt(entry, pattern)
                flight = self._inflight.get(key)
                if flight is None:
                    self.stats.misses += 1
                    flight = _InFlight()
                    self._inflight[key] = flight
                    break  # we compute
            # someone else is computing this key: wait and share
            flight.done.wait()
            with self._mutex:
                if flight.error is not None:
                    raise flight.error
                if flight.entry is not None:
                    self.stats.hits += 1
                    return self._adapt(flight.entry, pattern)
            # winner's entry was withdrawn (e.g. invalidation): retry

        try:
            result = compute()
        except BaseException as exc:
            with self._mutex:
                flight.error = exc
                self._inflight.pop(key, None)
                flight.done.set()
            raise
        entry = _Entry(pattern, result)
        with self._mutex:
            flight.entry = entry
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            self._inflight.pop(key, None)
            flight.done.set()
        return result

    def _adapt(self, entry: _Entry,
               pattern: QueryPattern) -> OptimizationResult:
        """Express a cached result in *pattern*'s node ids."""
        cached = entry.result
        if entry.pattern is pattern or (
                entry.pattern.nodes == pattern.nodes
                and entry.pattern.edges == pattern.edges
                and entry.pattern.order_by == pattern.order_by):
            plan = cached.plan
        else:
            mapping = pattern_isomorphism(entry.pattern, pattern)
            plan = remap_plan(cached.plan, mapping)
        return OptimizationResult(pattern=pattern, plan=plan,
                                  estimated_cost=cached.estimated_cost,
                                  report=cached.report)

    def invalidate(self) -> int:
        """Drop every cached plan (document reload / new statistics).

        Returns the number of entries dropped.
        """
        with self._mutex:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += 1
            return dropped
