"""Serving layer: plan caching and concurrent query execution.

:class:`QueryService` turns a single-shot
:class:`~repro.api.Database` into a small query server — batches run
on a thread pool, optimization is amortized across repeated patterns
through :class:`PlanCache`, and service-level metrics (latency
percentiles, cache hit rate, aggregate engine counters) are exposed
via :meth:`QueryService.snapshot` / :meth:`repro.api.Database.stats`.
"""

from repro.service.cache import (PlanCache, PlanCacheStats, cache_key,
                                 canonical_signature,
                                 pattern_isomorphism, remap_plan)
from repro.service.service import QueryService, percentile

__all__ = [
    "PlanCache",
    "PlanCacheStats",
    "QueryService",
    "cache_key",
    "canonical_signature",
    "pattern_isomorphism",
    "percentile",
    "remap_plan",
]
