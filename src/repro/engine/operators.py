"""Operator protocol for the iterator engine.

Operators are single-use: construct, then iterate :meth:`Operator.run`
once.  Each operator knows its output :class:`~repro.engine.tuples.Schema`
and the pattern node by which its output stream is ordered; downstream
operators rely on that contract and verify it while consuming (a
violated ordering is a planner bug and raises immediately rather than
silently corrupting results).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import PlanError
from repro.document.node import Region
from repro.engine.metrics import ExecutionMetrics
from repro.engine.tuples import MatchTuple, Schema


class Operator:
    """Base class of all physical operators."""

    def __init__(self, schema: Schema, ordered_by: int,
                 metrics: ExecutionMetrics) -> None:
        if ordered_by not in schema:
            raise PlanError(
                f"operator ordered by {ordered_by}, which is not in its "
                f"schema {schema.node_ids}")
        self.schema = schema
        self.ordered_by = ordered_by
        self.metrics = metrics
        #: tracing hook (:class:`repro.obs.spans.Span`): attached by the
        #: executor for traced runs, ``None`` otherwise.  The only cost
        #: when tracing is off is the one ``is None`` check in
        #: :meth:`run` — never anything per tuple.
        self._span = None
        self._consumed = False

    def run(self) -> Iterator[MatchTuple]:
        """Produce the output stream.  May be called once."""
        if self._consumed:
            raise PlanError("operator streams are single-use")
        self._consumed = True
        stream = self._produce()
        if self._span is None:
            return stream
        return self._span.wrap(stream)

    def describe(self) -> str:
        """One-line label for spans and traces (subclasses refine)."""
        return type(self).__name__

    def _produce(self) -> Iterator[MatchTuple]:
        raise NotImplementedError


class OrderCheckingIterator:
    """Wrap a tuple stream, asserting it is ordered by one column.

    Used by join operators on their inputs: the stack-tree algorithms
    are only correct on document-ordered inputs, so a violation is
    surfaced as a :class:`~repro.errors.PlanError` at the first
    offending tuple.
    """

    def __init__(self, source: Iterator[MatchTuple], schema: Schema,
                 ordered_by: int, label: str = "input") -> None:
        self._source = source
        self._position = schema.position(ordered_by)
        self._label = label
        self._last_start = -1

    def __iter__(self) -> Iterator[MatchTuple]:
        for match in self._source:
            start = match[self._position].start
            if start < self._last_start:
                raise PlanError(
                    f"{self._label} is not ordered by its declared "
                    f"column (saw start {start} after {self._last_start})")
            self._last_start = start
            yield match


def group_by_column(stream: Iterator[MatchTuple], schema: Schema,
                    node_id: int) -> Iterator[tuple[Region, list[MatchTuple]]]:
    """Group an ordered tuple stream by one bound region.

    Adjacent tuples sharing the same region in column *node_id* are
    collected into one group, preserving order.  Join operators work on
    groups so the region-nesting invariant of the join stack holds even
    when intermediate results bind the same data node many times.
    """
    position = schema.position(node_id)
    current_region: Region | None = None
    bucket: list[MatchTuple] = []
    for match in stream:
        region = match[position]
        if current_region is not None and region == current_region:
            bucket.append(match)
        else:
            if current_region is not None:
                yield current_region, bucket
            current_region = region
            bucket = [match]
    if current_region is not None:
        yield current_region, bucket
