"""Blocking sort operator.

Materializes its input, sorts by the start position of the requested
column, and re-emits.  Sorting is the only blocking operation in the
plan space (Fig. 2): a plan containing a sort is not fully pipelined.
The ``n * log2 n`` work is recorded in ``metrics.sort_units``, which
the simulated-cost formula weights by ``f_s`` exactly as the cost model
does.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.operators import Operator
from repro.engine.tuples import MatchTuple


class SortOperator(Operator):
    """Sort a tuple stream by one bound node's document position."""

    def __init__(self, child: Operator, by_node: int) -> None:
        super().__init__(child.schema, by_node, child.metrics)
        self.child = child
        self.by_node = by_node

    def describe(self) -> str:
        return f"Sort(by ${self.by_node})"

    def _produce(self) -> Iterator[MatchTuple]:
        position = self.schema.position(self.by_node)
        materialized = list(self.child.run())
        self.metrics.record_sort(len(materialized))
        materialized.sort(key=lambda match: match[position].start)
        yield from materialized
