"""Baseline evaluation strategies.

These exist for two reasons: as correctness *oracles* for the
stack-tree operators and optimizers in the test suite, and as the
"really bad plan" yardstick of Example 2.2 (scan the subtree under
every candidate root).

* :class:`NestedLoopJoin` — quadratic structural join operator.
* :func:`naive_pattern_matches` — evaluate a whole pattern by brute
  force over candidate combinations (exponential; tiny inputs only).
* :func:`navigational_matches` — the navigational plan: recursive
  subtree walks from candidate roots.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.pattern import Axis, QueryPattern
from repro.document.document import XmlDocument
from repro.document.node import NodeRecord, Region
from repro.engine.operators import Operator
from repro.engine.tuples import MatchTuple


class NestedLoopJoin(Operator):
    """Quadratic structural join; output ordered by the ancestor side.

    Materializes the descendant input and probes it for every ancestor
    tuple.  Exists for oracle duty — no optimizer ever picks it.
    """

    def __init__(self, ancestor_input: Operator, descendant_input: Operator,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis) -> None:
        schema = ancestor_input.schema.concat(descendant_input.schema)
        super().__init__(schema, ancestor_input.ordered_by,
                         ancestor_input.metrics)
        self.ancestor_input = ancestor_input
        self.descendant_input = descendant_input
        self.ancestor_node = ancestor_node
        self.descendant_node = descendant_node
        self.ancestor_position = ancestor_input.schema.position(ancestor_node)
        self.descendant_position = descendant_input.schema.position(
            descendant_node)
        self.axis = axis

    def describe(self) -> str:
        return (f"NestedLoopJoin(${self.ancestor_node} "
                f"{self.axis} ${self.descendant_node})")

    def _produce(self) -> Iterator[MatchTuple]:
        self.metrics.join_count += 1
        inner = list(self.descendant_input.run())
        for anc_tuple in self.ancestor_input.run():
            ancestor = anc_tuple[self.ancestor_position]
            for desc_tuple in inner:
                descendant = desc_tuple[self.descendant_position]
                if _related(ancestor, descendant, self.axis):
                    self.metrics.output_tuples += 1
                    yield anc_tuple + desc_tuple


def _related(ancestor: Region, descendant: Region, axis: Axis) -> bool:
    if not ancestor.is_ancestor_of(descendant):
        return False
    return axis is Axis.DESCENDANT or ancestor.level + 1 == descendant.level


def naive_pattern_matches(document: XmlDocument,
                          pattern: QueryPattern) -> list[dict[int, Region]]:
    """All matches of *pattern* by brute-force candidate combination.

    Exponential in pattern size; strictly a test oracle.  Returns one
    binding dict per match, in no particular order.
    """
    candidates: dict[int, list[NodeRecord]] = {}
    for pattern_node in pattern.nodes:
        pool = (document.nodes if pattern_node.is_wildcard
                else document.nodes_with_tag(pattern_node.tag))
        candidates[pattern_node.node_id] = [
            node for node in pool if pattern_node.matches(node)]

    order = list(pattern.walk_preorder())
    matches: list[dict[int, Region]] = []

    def extend(index: int, binding: dict[int, Region]) -> None:
        if index == len(order):
            matches.append(dict(binding))
            return
        node_id = order[index]
        edge = pattern.parent_edge(node_id)
        for candidate in candidates[node_id]:
            if edge is not None:
                parent_region = binding[edge.parent]
                if not _related(parent_region, candidate.region, edge.axis):
                    continue
            binding[node_id] = candidate.region
            extend(index + 1, binding)
            del binding[node_id]

    extend(0, {})
    return matches


def navigational_matches(document: XmlDocument,
                         pattern: QueryPattern) -> list[dict[int, Region]]:
    """Evaluate *pattern* navigationally (the poor plan of Example 2.2).

    For every candidate binding of the pattern root, walk the subtree
    below it to bind the remaining pattern nodes recursively.  Correct,
    and much slower than structural joins on deep data — which is the
    paper's motivation for join-based evaluation.
    """
    root_id = pattern.root
    root_node = pattern.node(root_id)

    def match_at(node_id: int,
                 data_node: NodeRecord) -> Iterator[dict[int, Region]]:
        """Bindings of the sub-pattern rooted at *node_id* onto
        *data_node* (which is assumed to satisfy the node test)."""
        edges = pattern.child_edges(node_id)

        def combine(edge_index: int) -> Iterator[dict[int, Region]]:
            if edge_index == len(edges):
                yield {node_id: data_node.region}
                return
            edge = edges[edge_index]
            child_pattern = pattern.node(edge.child)
            if edge.axis is Axis.CHILD:
                pool: list[NodeRecord] = document.children(data_node)
            else:
                pool = list(document.descendants(data_node))
            for candidate in pool:
                if not child_pattern.matches(candidate):
                    continue
                for sub_binding in match_at(edge.child, candidate):
                    for rest in combine(edge_index + 1):
                        yield {**sub_binding, **rest}

        yield from combine(0)

    matches: list[dict[int, Region]] = []
    for candidate in document:
        if root_node.matches(candidate):
            matches.extend(match_at(root_id, candidate))
    return matches
