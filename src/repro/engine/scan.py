"""Index scan operator.

Retrieves the candidate set of one pattern node from the tag index (in
document order), applies the node's value predicates, and emits
single-binding tuples.  Retrieval is charged per posting
(``index_items``), matching the paper's ``f_I * n`` index-access cost;
predicate evaluation fetches element payloads through the element
store's buffer pool when no in-memory document is available.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.errors import PlanError
from repro.core.pattern import PatternNode
from repro.engine.context import EngineContext
from repro.engine.operators import Operator
from repro.engine.tuples import MatchTuple, Schema


class IndexScan(Operator):
    """Leaf operator: candidates of one pattern node, document order."""

    def __init__(self, pattern_node: PatternNode,
                 context: EngineContext) -> None:
        super().__init__(Schema((pattern_node.node_id,)),
                         pattern_node.node_id, context.metrics)
        self.pattern_node = pattern_node
        self.context = context
        self._reader = None  # per-scan page-batched store access

    def describe(self) -> str:
        return (f"IndexScan(${self.pattern_node.node_id}:"
                f"{self.pattern_node.label()})")

    def _postings(self):
        index = self.context.tag_index
        if self.pattern_node.is_wildcard:
            streams = [index.scan(tag) for tag in index.tags()]
            return heapq.merge(*streams, key=lambda region: region.start)
        return index.scan(self.pattern_node.tag)

    def _produce(self) -> Iterator[MatchTuple]:
        needs_payload = bool(self.pattern_node.predicates)
        for region in self._postings():
            self.metrics.index_items += 1
            if needs_payload and not self._payload_matches(region):
                continue
            yield (region,)

    def _payload_matches(self, region) -> bool:
        if self.context.document is not None:
            node = self.context.document.node(region.start)
        elif self.context.element_store is not None:
            if self._reader is None:
                self._reader = self.context.element_store.reader()
            node = self._reader.node(region.start)
        else:
            raise PlanError(
                "predicate evaluation needs a document or element store")
        return self.pattern_node.matches(node)
