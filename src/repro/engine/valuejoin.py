"""Value-based joins and grouping over pattern-match results.

The paper closes with "we will also consider expensive operations
beyond structural pattern matching, such as value-based joins and
grouping" (Sec. 6).  This module prototypes that layer on top of the
structural engine:

* :class:`ValueJoin` — hash equi-join between two pattern-match
  results, comparing the *text* (or an attribute) of one bound node
  from each side.  Each side is a full tree-pattern query whose join
  order the structural optimizers have already chosen; the value join
  is evaluated on top, the way Timber would pipeline a value predicate
  after pattern matching.
* :func:`group_matches` — group a result by the data node bound to one
  pattern node, the building block of aggregation.

Costs: the hash join performs one pass over each input plus one
element-store/document lookup per tuple for the join key; lookups are
charged as index items so the simulated cost stays in the paper's
currency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.document.document import XmlDocument
from repro.document.node import Region
from repro.engine.executor import ExecutionResult
from repro.engine.metrics import ExecutionMetrics
from repro.engine.tuples import MatchTuple, Schema


def _key_of(document: XmlDocument, region: Region, attribute: str) -> str:
    node = document.node(region.start)
    if attribute:
        value = node.attributes.get(attribute)
        return value if value is not None else ""
    return node.text


@dataclass
class ValueJoinResult:
    """Joined rows: one (left tuple, right tuple) pair per match."""

    rows: list[tuple[MatchTuple, MatchTuple]]
    left_schema: Schema
    right_schema: Schema
    metrics: ExecutionMetrics

    def __len__(self) -> int:
        return len(self.rows)

    def keys(self, document: XmlDocument, left_node: int,
             attribute: str = "") -> list[str]:
        """The join-key values of the result rows, in row order."""
        position = self.left_schema.position(left_node)
        return [_key_of(document, left[position], attribute)
                for left, __ in self.rows]


class ValueJoin:
    """Hash equi-join of two pattern-match results on node values.

    Each side has its own key spec: the bound pattern node plus an
    optional attribute name (empty = use the element's text), so
    text-to-attribute joins like ``person/name = order/@ref`` work.
    """

    def __init__(self, document: XmlDocument,
                 left_node: int, right_node: int,
                 left_attribute: str = "",
                 right_attribute: str = "") -> None:
        self.document = document
        self.left_node = left_node
        self.right_node = right_node
        self.left_attribute = left_attribute
        self.right_attribute = right_attribute

    def join(self, left: ExecutionResult,
             right: ExecutionResult) -> ValueJoinResult:
        """Join *left* and *right* on equal key values."""
        if self.left_node not in left.schema:
            raise PlanError(
                f"left side does not bind node {self.left_node}")
        if self.right_node not in right.schema:
            raise PlanError(
                f"right side does not bind node {self.right_node}")
        metrics = ExecutionMetrics(factors=left.metrics.factors)
        right_position = right.schema.position(self.right_node)
        table: dict[str, list[MatchTuple]] = {}
        for match in right.tuples:
            key = _key_of(self.document, match[right_position],
                          self.right_attribute)
            metrics.index_items += 1  # key lookup
            if key:
                table.setdefault(key, []).append(match)

        left_position = left.schema.position(self.left_node)
        rows: list[tuple[MatchTuple, MatchTuple]] = []
        for match in left.tuples:
            key = _key_of(self.document, match[left_position],
                          self.left_attribute)
            metrics.index_items += 1
            for partner in table.get(key, ()):
                rows.append((match, partner))
        metrics.output_tuples = len(rows)
        return ValueJoinResult(rows=rows, left_schema=left.schema,
                               right_schema=right.schema,
                               metrics=metrics)


def group_matches(result: ExecutionResult,
                  by_node: int) -> dict[Region, list[MatchTuple]]:
    """Group a result's tuples by the region bound to *by_node*.

    Groups come back keyed by region (hashable, document-ordered), so
    callers can aggregate per group — e.g. matches per manager.
    """
    position = result.schema.position(by_node)
    groups: dict[Region, list[MatchTuple]] = {}
    for match in result.tuples:
        groups.setdefault(match[position], []).append(match)
    return groups


def group_counts(result: ExecutionResult,
                 by_node: int) -> dict[Region, int]:
    """Convenience: group sizes per bound region of *by_node*."""
    return {region: len(rows)
            for region, rows in group_matches(result, by_node).items()}
