"""Block-at-a-time execution engine.

Columnar re-implementation of the iterator operators: every operator
produces its entire output as one :class:`TupleBlock`, built with
C-speed primitives — ``bisect`` probes over typed ``array`` columns,
list slices, comprehension cross-products — instead of a Python
generator frame per tuple.

Two invariants tie this engine to the tuple engine in ``scan.py`` /
``stackjoin.py`` / ``sort.py`` / ``nestedloop.py``:

* **Result parity** — each block operator emits exactly the tuple
  sequence its iterator twin yields, in the same order.

* **Metrics parity** — each block operator charges exactly the same
  :class:`~repro.engine.metrics.ExecutionMetrics` counters
  (``index_items``, ``stack_tuple_ops``, ``buffered_results``, the
  sort counters, ``output_tuples``, ``join_count``), so
  ``simulated_cost()`` — the currency the optimizer's cost model is
  validated in — is identical under either engine.  Only the
  page/buffer I/O diagnostics may differ: the block engine reads each
  posting page once per decode-cache epoch instead of once per scan.

The counters are consumption-driven in the tuple engine, which is why
its stack joins drain their ancestor input at end-of-stream (see
``stackjoin.py``): with total consumption, the full-list bulk charges
here are exactly equivalent, and skip-ahead can jump over non-joining
runs without touching any counter.

Skip-ahead — the optimization the paper inherits from its structural-
join reference — exploits that grouped columns are sorted by start and
that regions of one tree either nest or are disjoint:

* the Desc join locates, per descendant group, the live ancestor stack
  as the *parent chain* of its ``bisect`` predecessor; ancestor runs
  that ended before the descendant are never visited;
* the Anc join locates, per ancestor group, its matching descendant
  groups as one contiguous ``bisect`` window of the descendant start
  column; descendants outside the window are never visited.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from itertools import repeat
from operator import add
from typing import Callable, Sequence

from repro.errors import PlanError
from repro.core.pattern import Axis, PatternNode
from repro.document.node import Region
from repro.engine.context import EngineContext
from repro.engine.metrics import ExecutionMetrics
from repro.engine.nestedloop import _related
from repro.engine.tuples import MatchTuple, Schema


class ColumnGroups:
    """Grouped view of one bound column of a block.

    ``starts``/``ends``/``levels`` hold one entry per *group* — a run
    of adjacent rows binding the same region — and
    ``bounds[i]:bounds[i + 1]`` is group *i*'s row range (``bounds``
    therefore also gives cumulative row counts).  :meth:`parents`
    lazily computes, per group, the index of the nearest enclosing
    group to its left, or -1.
    """

    __slots__ = ("starts", "ends", "levels", "bounds", "_parents")

    def __init__(self, starts: Sequence[int], ends: Sequence[int],
                 levels: Sequence[int], bounds: Sequence[int]) -> None:
        self.starts = starts
        self.ends = ends
        self.levels = levels
        self.bounds = bounds
        self._parents: list[int] | None = None

    def __len__(self) -> int:
        return len(self.starts)

    def parents(self) -> list[int]:
        """Nearest-enclosing-group index per group (-1 at top level)."""
        if self._parents is None:
            parents: list[int] = []
            stack: list[int] = []
            ends = self.ends
            for index, start in enumerate(self.starts):
                while stack and ends[stack[-1]] < start:
                    stack.pop()
                parents.append(stack[-1] if stack else -1)
                stack.append(index)
            self._parents = parents
        return self._parents


def _group_rows(rows: list[MatchTuple], position: int,
                label: str) -> ColumnGroups:
    """Group a document-ordered row list by one bound column.

    The block-engine counterpart of
    :func:`repro.engine.operators.group_by_column` plus the order
    check of ``OrderCheckingIterator``: a decreasing start is a
    planner bug and raises immediately.
    """
    starts: list[int] = []
    ends: list[int] = []
    levels: list[int] = []
    bounds: list[int] = []
    last = -1
    for index, row in enumerate(rows):
        region = row[position]
        start = region.start
        if start == last and bounds:
            continue
        if start < last:
            raise PlanError(
                f"{label} is not ordered by its declared "
                f"column (saw start {start} after {last})")
        starts.append(start)
        ends.append(region.end)
        levels.append(region.level)
        bounds.append(index)
        last = start
    bounds.append(len(rows))
    return ColumnGroups(starts, ends, levels, bounds)


class TupleBlock:
    """One operator's entire output: schema, rows, grouped views.

    ``shared`` marks row lists borrowed from the decode cache (leaf
    scans without predicates); anything exposing rows to callers must
    copy a shared list instead of handing it out.

    Leaf blocks may be built with ``rows_factory`` instead of a row
    list: the match tuples materialize on first ``rows`` access, so an
    operator that only probes the block's pre-set
    :class:`ColumnGroups` — bisect skip-ahead over packed columns —
    never creates a Python object per posting.  ``length`` carries the
    row count while rows are unmaterialized.
    """

    __slots__ = ("schema", "shared", "_groups", "_rows",
                 "_rows_factory", "_length")

    def __init__(self, schema: Schema,
                 rows: list[MatchTuple] | None = None,
                 shared: bool = False,
                 rows_factory: Callable[[], list[MatchTuple]] | None = None,
                 length: int | None = None) -> None:
        if rows is None and rows_factory is None:
            raise PlanError("TupleBlock needs rows or a rows_factory")
        self.schema = schema
        self.shared = shared
        self._rows = rows
        self._rows_factory = rows_factory
        self._length = len(rows) if rows is not None else length
        self._groups: dict[int, ColumnGroups] = {}

    @property
    def rows(self) -> list[MatchTuple]:
        """The block's match tuples (materialized on first access)."""
        rows = self._rows
        if rows is None:
            assert self._rows_factory is not None
            rows = self._rows_factory()
            self._rows = rows
            self._length = len(rows)
        return rows

    def __len__(self) -> int:
        if self._length is None:
            return len(self.rows)
        return self._length

    def grouped(self, node_id: int,
                label: str = "input") -> ColumnGroups:
        """The grouped view of column *node_id* (cached per block)."""
        groups = self._groups.get(node_id)
        if groups is None:
            groups = _group_rows(self.rows,
                                 self.schema.position(node_id), label)
            self._groups[node_id] = groups
        return groups


class BlockOperator:
    """Base class of block operators (single-use, like ``Operator``)."""

    def __init__(self, schema: Schema, ordered_by: int,
                 metrics: ExecutionMetrics) -> None:
        if ordered_by not in schema:
            raise PlanError(
                f"operator ordered by {ordered_by}, which is not in its "
                f"schema {schema.node_ids}")
        self.schema = schema
        self.ordered_by = ordered_by
        self.metrics = metrics
        #: tracing hook (:class:`repro.obs.spans.Span`): attached by
        #: the executor for traced runs, ``None`` otherwise — one
        #: ``is None`` check per operator per execution, so untraced
        #: block execution is unchanged.
        self._span = None
        self._consumed = False

    def block(self) -> TupleBlock:
        """Produce the full output block.  May be called once."""
        if self._consumed:
            raise PlanError("operator streams are single-use")
        self._consumed = True
        span = self._span
        if span is None:
            return self._produce()
        started = time.perf_counter()
        block = self._produce()
        span.seconds += time.perf_counter() - started
        span.output_rows = len(block)
        return block

    def describe(self) -> str:
        """One-line label for spans and traces (subclasses refine)."""
        return type(self).__name__

    def _produce(self) -> TupleBlock:
        raise NotImplementedError


class BlockIndexScan(BlockOperator):
    """Leaf: one pattern node's candidate set as a single block.

    Pulls the cached :class:`~repro.storage.postings.RegionBlock` from
    the tag index (decoded at most once per index epoch) and charges
    ``index_items`` for the whole candidate set — the same ``f_I * n``
    the (drained) tuple scan accumulates one posting at a time.
    """

    def __init__(self, pattern_node: PatternNode,
                 context: EngineContext) -> None:
        super().__init__(Schema((pattern_node.node_id,)),
                         pattern_node.node_id, context.metrics)
        self.pattern_node = pattern_node
        self.context = context

    def describe(self) -> str:
        return (f"IndexScan(${self.pattern_node.node_id}:"
                f"{self.pattern_node.label()})")

    def _produce(self) -> TupleBlock:
        index = self.context.tag_index
        if self.pattern_node.is_wildcard:
            postings = index.scan_blocks_all()
        else:
            postings = index.scan_blocks(self.pattern_node.tag)
        self.metrics.index_items += len(postings)
        node_id = self.pattern_node.node_id
        if not self.pattern_node.predicates:
            # lazy: downstream bisect probes run over the packed
            # columns alone; match tuples materialize only if a
            # consumer (join emission, final result) touches rows
            block = TupleBlock(self.schema,
                               rows_factory=lambda: postings.rows,
                               shared=True, length=len(postings))
            block._groups[node_id] = ColumnGroups(
                postings.starts, postings.ends, postings.levels,
                range(len(postings) + 1))
            return block
        matches = self._matcher()
        rows: list[MatchTuple] = []
        starts: list[int] = []
        ends: list[int] = []
        levels: list[int] = []
        # probe the packed start column; the tag's cached Region list
        # materializes only when the predicate first matches, and is
        # then reused across executions
        col_starts = postings.starts
        regions: Sequence[Region] | None = None
        for position in range(len(postings)):
            start = col_starts[position]
            if matches(start):
                if regions is None:
                    regions = postings.regions
                region = regions[position]
                rows.append((region,))
                starts.append(start)
                ends.append(region.end)
                levels.append(region.level)
        block = TupleBlock(self.schema, rows)
        block._groups[node_id] = ColumnGroups(
            starts, ends, levels, range(len(rows) + 1))
        return block

    def _matcher(self) -> Callable[[int], bool]:
        pattern_node = self.pattern_node
        context = self.context
        if context.document is not None:
            lookup = context.document.node
        elif context.element_store is not None:
            lookup = context.element_store.reader().node
        else:
            raise PlanError(
                "predicate evaluation needs a document or element store")
        return lambda start: pattern_node.matches(lookup(start))


class BlockSort(BlockOperator):
    """Blocking sort by one bound node's document position."""

    def __init__(self, child: BlockOperator, by_node: int) -> None:
        super().__init__(child.schema, by_node, child.metrics)
        self.child = child
        self.by_node = by_node

    def describe(self) -> str:
        return f"Sort(by ${self.by_node})"

    def _produce(self) -> TupleBlock:
        child_block = self.child.block()
        position = self.schema.position(self.by_node)
        self.metrics.record_sort(len(child_block))
        rows = sorted(child_block.rows,
                      key=lambda match: match[position].start)
        return TupleBlock(self.schema, rows)


class _BlockJoinBase(BlockOperator):
    """Shared setup for the two block stack-tree operators."""

    def __init__(self, ancestor_input: BlockOperator,
                 descendant_input: BlockOperator,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis, ordered_by: int) -> None:
        schema = ancestor_input.schema.concat(descendant_input.schema)
        super().__init__(schema, ordered_by, ancestor_input.metrics)
        self.ancestor_input = ancestor_input
        self.descendant_input = descendant_input
        self.ancestor_node = ancestor_node
        self.descendant_node = descendant_node
        self.axis = axis

    def describe(self) -> str:
        return (f"{type(self).__name__}(${self.ancestor_node} "
                f"{self.axis} ${self.descendant_node})")

    def _inputs(self) -> tuple[TupleBlock, ColumnGroups,
                               TupleBlock, ColumnGroups]:
        anc_block = self.ancestor_input.block()
        desc_block = self.descendant_input.block()
        return (anc_block,
                anc_block.grouped(self.ancestor_node, "ancestor input"),
                desc_block,
                desc_block.grouped(self.descendant_node,
                                   "descendant input"))

    def _charge_pushes(self, anc: ColumnGroups,
                       desc: ColumnGroups) -> None:
        """Bulk ``stack_tuple_ops`` charge.

        The tuple engine pushes exactly the ancestor groups whose
        start precedes the final descendant group's start, charging
        one op per tuple pushed; ``bounds`` gives that tuple total in
        one ``bisect`` step.
        """
        pushed = bisect_left(anc.starts, desc.starts[-1])
        self.metrics.stack_tuple_ops += anc.bounds[pushed]


class BlockStackTreeDescJoin(_BlockJoinBase):
    """Structural join, output ordered by the descendant binding.

    Per descendant group, the tuple engine's live stack is exactly the
    chain of ancestor groups enclosing the descendant's start: the
    ``bisect`` predecessor of the start, climbed through
    :meth:`ColumnGroups.parents` past groups that ended too early,
    then out to the chain's root.  Consecutive descendants under the
    same innermost ancestor reuse the chain.
    """

    def __init__(self, ancestor_input: BlockOperator,
                 descendant_input: BlockOperator,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis) -> None:
        super().__init__(ancestor_input, descendant_input,
                         ancestor_node, descendant_node, axis,
                         ordered_by=descendant_node)

    def _produce(self) -> TupleBlock:
        self.metrics.join_count += 1
        anc_block, anc, desc_block, desc = self._inputs()
        out: list[MatchTuple] = []
        if len(anc) and len(desc):
            self._charge_pushes(anc, desc)
            parents = anc.parents()
            child_axis = self.axis is Axis.CHILD
            anc_rows = anc_block.rows
            desc_rows = desc_block.rows
            anc_starts = anc.starts
            anc_ends = anc.ends
            anc_levels = anc.levels
            anc_bounds = anc.bounds
            desc_bounds = desc.bounds
            out_extend = out.extend
            cached_top = -2
            chain: list[int] = []
            for group in range(len(desc)):
                d_start = desc.starts[group]
                top = bisect_left(anc_starts, d_start) - 1
                while top >= 0 and anc_ends[top] < d_start:
                    top = parents[top]
                if top < 0:
                    continue
                if top != cached_top:
                    chain = []
                    node = top
                    while node >= 0:
                        chain.append(node)
                        node = parents[node]
                    chain.reverse()  # stack bottom (outermost) first
                    cached_top = top
                d_end = desc.ends[group]
                d_level = desc.levels[group]
                d_rows = desc_rows[desc_bounds[group]:
                                   desc_bounds[group + 1]]
                for entry in chain:
                    if anc_ends[entry] < d_end:
                        continue
                    if child_axis and anc_levels[entry] + 1 != d_level:
                        continue
                    a_rows = anc_rows[anc_bounds[entry]:
                                      anc_bounds[entry + 1]]
                    # emission order: descendant tuple outer, ancestor
                    # inner — the maps below keep all per-pair work in
                    # C (no Python frame per output tuple)
                    if len(a_rows) == 1:
                        out_extend(map(a_rows[0].__add__, d_rows))
                    else:
                        for desc_tuple in d_rows:
                            out_extend(map(add, a_rows,
                                           repeat(desc_tuple)))
            self.metrics.output_tuples += len(out)
        return TupleBlock(self.schema, out)


class BlockStackTreeAncJoin(_BlockJoinBase):
    """Structural join, output ordered by the ancestor binding.

    The tuple engine buffers results in self/inherit lists and emits
    them as ancestors pop; the net effect is preorder by ancestor
    group, each group's own pairs before those of the groups nested
    inside it.  Iterating ancestor groups in start order reproduces
    that order directly, and each group's matching descendant groups
    are one contiguous ``bisect`` window of the descendant column.
    """

    def __init__(self, ancestor_input: BlockOperator,
                 descendant_input: BlockOperator,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis) -> None:
        super().__init__(ancestor_input, descendant_input,
                         ancestor_node, descendant_node, axis,
                         ordered_by=ancestor_node)

    def _produce(self) -> TupleBlock:
        self.metrics.join_count += 1
        anc_block, anc, desc_block, desc = self._inputs()
        out: list[MatchTuple] = []
        if len(anc) and len(desc):
            self._charge_pushes(anc, desc)
            child_axis = self.axis is Axis.CHILD
            anc_rows = anc_block.rows
            desc_rows = desc_block.rows
            desc_starts = desc.starts
            desc_ends = desc.ends
            desc_levels = desc.levels
            desc_bounds = desc.bounds
            group_count = len(desc)
            buffered = 0
            out_extend = out.extend
            # Only pushed groups (start before the last descendant's
            # start) can hold matches; later groups have no descendant
            # strictly after their start.
            pushed = bisect_left(anc.starts, desc_starts[-1])
            for group in range(pushed):
                a_start = anc.starts[group]
                a_end = anc.ends[group]
                window = bisect_right(desc_starts, a_start)
                if window >= group_count or desc_starts[window] > a_end:
                    continue
                stop = bisect_right(desc_starts, a_end, window)
                a_rows = anc_rows[anc.bounds[group]:
                                  anc.bounds[group + 1]]
                a_len = len(a_rows)
                a_level = anc.levels[group]
                for inner in range(window, stop):
                    if desc_ends[inner] > a_end:
                        continue
                    if child_axis and a_level + 1 != desc_levels[inner]:
                        continue
                    d_rows = desc_rows[desc_bounds[inner]:
                                       desc_bounds[inner + 1]]
                    buffered += a_len * len(d_rows)
                    # emission order: ancestor tuple outer, descendant
                    # inner, all per-pair work in C
                    for anc_tuple in a_rows:
                        out_extend(map(anc_tuple.__add__, d_rows))
            self.metrics.buffered_results += buffered
            self.metrics.output_tuples += len(out)
        return TupleBlock(self.schema, out)


class BlockNestedLoopJoin(BlockOperator):
    """Quadratic oracle join, block form (identical probe order)."""

    def __init__(self, ancestor_input: BlockOperator,
                 descendant_input: BlockOperator,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis) -> None:
        schema = ancestor_input.schema.concat(descendant_input.schema)
        super().__init__(schema, ancestor_input.ordered_by,
                         ancestor_input.metrics)
        self.ancestor_input = ancestor_input
        self.descendant_input = descendant_input
        self.ancestor_node = ancestor_node
        self.descendant_node = descendant_node
        self.ancestor_position = ancestor_input.schema.position(
            ancestor_node)
        self.descendant_position = descendant_input.schema.position(
            descendant_node)
        self.axis = axis

    def describe(self) -> str:
        return (f"NestedLoopJoin(${self.ancestor_node} "
                f"{self.axis} ${self.descendant_node})")

    def _produce(self) -> TupleBlock:
        self.metrics.join_count += 1
        inner = self.descendant_input.block().rows
        out: list[MatchTuple] = []
        apos = self.ancestor_position
        dpos = self.descendant_position
        axis = self.axis
        for anc_tuple in self.ancestor_input.block().rows:
            ancestor = anc_tuple[apos]
            out.extend(anc_tuple + desc_tuple for desc_tuple in inner
                       if _related(ancestor, desc_tuple[dpos], axis))
        self.metrics.output_tuples += len(out)
        return TupleBlock(self.schema, out)
