"""Execution metrics and simulated cost.

Counters mirror the four cost-model operations of Sec. 2.2.2 so that a
measured run can be expressed in the same cost units the optimizer
planned with:

* ``index_items``     — postings fetched by index scans  (x ``f_I``)
* ``sort_units``      — accumulated ``n * log2 n`` over all sorts
  (x ``f_s``)
* ``buffered_results``— result pairs buffered by Stack-Tree-Anc; each
  is written and re-read, hence the factor 2 (x ``f_IO``)
* ``stack_tuple_ops`` — ancestor-side tuples pushed through join
  stacks; each is pushed and popped, hence the factor 2 (x ``f_st``)

Page-level I/O from the storage layer is reported alongside for
diagnostics but not double-charged into the simulated cost (index
postings are already costed per item, as the paper does).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.cost import CostFactors
from repro.errors import ReproError

#: the cost-model counters (plus sort diagnostics) that must agree
#: between engines and sum exactly across per-operator attributions.
COST_COUNTERS = ("index_items", "sort_count", "sorted_items",
                 "sort_units", "buffered_results", "stack_tuple_ops",
                 "output_tuples", "join_count")


@dataclass
class ExecutionMetrics:
    """Work counters for one plan execution."""

    index_items: int = 0
    sort_units: float = 0.0
    sorted_items: int = 0
    sort_count: int = 0
    buffered_results: int = 0
    stack_tuple_ops: int = 0
    output_tuples: int = 0
    join_count: int = 0
    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    wall_seconds: float = 0.0
    factors: CostFactors = field(default_factory=CostFactors)

    def record_sort(self, items: int) -> None:
        self.sort_count += 1
        self.sorted_items += items
        if items > 1:
            self.sort_units += items * math.log2(items)

    def simulated_cost(self) -> float:
        """Measured work expressed in the optimizer's cost units."""
        return (self.factors.f_index * self.index_items
                + self.factors.f_sort * self.sort_units
                + self.factors.f_io * 2.0 * self.buffered_results
                + self.factors.f_stack * 2.0 * self.stack_tuple_ops)

    def counters(self) -> dict[str, float]:
        """The cost-model counters as a dict (parity checks, exports)."""
        return {name: getattr(self, name) for name in COST_COUNTERS}

    def reprice(self, factors: CostFactors) -> None:
        """Re-express these metrics under new cost factors.

        The counters are factor-independent measurements; only
        :meth:`simulated_cost` depends on the factors.  Aggregators
        (e.g. the query service's engine totals) call this when the
        database's factors are swapped at runtime so later
        :meth:`merge` calls — whose runs carry the new factors — keep
        working instead of raising a currency mismatch.
        """
        self.factors = factors

    def merge(self, other: "ExecutionMetrics") -> None:
        """Accumulate counters from another run (for aggregate reports).

        Both sides must share one set of cost factors: merging runs
        priced in different currencies would make the aggregate
        ``simulated_cost()`` meaningless, so a mismatch raises instead
        of silently keeping ``self``'s factors.
        """
        if other.factors != self.factors:
            raise ReproError(
                f"cannot merge ExecutionMetrics with different cost "
                f"factors ({self.factors} vs {other.factors}); "
                f"re-express one run before aggregating")
        self.index_items += other.index_items
        self.sort_units += other.sort_units
        self.sorted_items += other.sorted_items
        self.sort_count += other.sort_count
        self.buffered_results += other.buffered_results
        self.stack_tuple_ops += other.stack_tuple_ops
        self.output_tuples += other.output_tuples
        self.join_count += other.join_count
        self.page_reads += other.page_reads
        self.page_writes += other.page_writes
        self.buffer_hits += other.buffer_hits
        self.buffer_misses += other.buffer_misses
        self.wall_seconds += other.wall_seconds

    def summary(self) -> str:
        return (f"index={self.index_items} sorts={self.sort_count}"
                f"({self.sorted_items} items) "
                f"buffered={self.buffered_results} "
                f"stack={self.stack_tuple_ops} out={self.output_tuples} "
                f"cost={self.simulated_cost():.1f}")
