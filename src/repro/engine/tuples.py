"""Match tuples and operator schemas.

A :class:`MatchTuple` binds a subset of pattern nodes to regions of the
data tree.  Operators agree on a :class:`Schema` — the ordered list of
pattern-node ids their tuples carry — so a tuple is just a tuple of
:class:`~repro.document.node.Region` values aligned with the schema.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import PlanError
from repro.document.node import Region

#: A match tuple is an aligned tuple of regions; the schema gives meaning.
MatchTuple = tuple[Region, ...]


class Schema:
    """Ordered pattern-node ids carried by a tuple stream."""

    __slots__ = ("node_ids", "_index")

    def __init__(self, node_ids: Iterable[int]) -> None:
        self.node_ids: tuple[int, ...] = tuple(node_ids)
        if len(set(self.node_ids)) != len(self.node_ids):
            raise PlanError(f"schema has duplicate nodes: {self.node_ids}")
        self._index = {node_id: position
                       for position, node_id in enumerate(self.node_ids)}

    def __len__(self) -> int:
        return len(self.node_ids)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.node_ids == other.node_ids

    def __hash__(self) -> int:
        return hash(self.node_ids)

    def position(self, node_id: int) -> int:
        """Index of *node_id* within tuples of this schema."""
        position = self._index.get(node_id)
        if position is None:
            raise PlanError(f"node {node_id} not in schema {self.node_ids}")
        return position

    def binding(self, match: MatchTuple, node_id: int) -> Region:
        """The region bound to *node_id* in *match*."""
        return match[self.position(node_id)]

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: left columns then right columns."""
        overlap = set(self.node_ids) & set(other.node_ids)
        if overlap:
            raise PlanError(f"schemas overlap on nodes {sorted(overlap)}")
        return Schema(self.node_ids + other.node_ids)

    def as_mapping(self, match: MatchTuple) -> Mapping[int, Region]:
        """Dict view of a tuple (for display and tests)."""
        return dict(zip(self.node_ids, match))

    def canonical_key(self, match: MatchTuple) -> tuple[int, ...]:
        """Order-independent identity of a match (for set comparison)."""
        return tuple(region.start for _, region in
                     sorted(zip(self.node_ids, match)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Schema{self.node_ids}"
