"""Physical execution engine.

Volcano-style iterator operators over streams of pattern-match tuples:
index scans feed Stack-Tree structural joins, with blocking sorts
inserted where a plan demands a re-ordering.  Every operator reports
its work (index items, stack operations, buffered results, sorted
items) into a shared :class:`~repro.engine.metrics.ExecutionMetrics`,
which converts the counts into *simulated seconds* using the same cost
factors the optimizer plans with.
"""

from repro.engine.metrics import ExecutionMetrics
from repro.engine.tuples import MatchTuple, Schema
from repro.engine.blocks import BlockOperator, ColumnGroups, TupleBlock
from repro.engine.executor import (ENGINE_NAMES, ExecutionResult,
                                   Executor, EngineContext,
                                   validate_engine)
from repro.engine.nestedloop import (naive_pattern_matches,
                                     navigational_matches)
from repro.engine.twigstack import TwigStackMatcher, holistic_matches
from repro.engine.valuejoin import (ValueJoin, ValueJoinResult,
                                    group_counts, group_matches)
from repro.engine.executor import (FirstResultTiming, StreamingExecution,
                                   measure_time_to_first)

__all__ = [
    "StreamingExecution",
    "measure_time_to_first",
    "TwigStackMatcher",
    "holistic_matches",
    "ValueJoin",
    "ValueJoinResult",
    "group_counts",
    "group_matches",
    "FirstResultTiming",
    "ExecutionMetrics",
    "MatchTuple",
    "Schema",
    "ExecutionResult",
    "Executor",
    "EngineContext",
    "ENGINE_NAMES",
    "validate_engine",
    "BlockOperator",
    "ColumnGroups",
    "TupleBlock",
    "naive_pattern_matches",
    "navigational_matches",
]
