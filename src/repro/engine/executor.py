"""Plan execution: physical plan tree -> operator tree -> results.

The :class:`Executor` walks a :class:`~repro.core.plans.PhysicalPlan`,
instantiates the matching operators against an
:class:`~repro.engine.context.EngineContext`, runs the root to
completion, and returns an :class:`ExecutionResult` bundling the match
tuples, the output schema, the work counters, and wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import PlanError
from repro.core.pattern import QueryPattern
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              SortPlan, StructuralJoinPlan)
from repro.document.node import Region
from repro.engine.blocks import (BlockIndexScan, BlockNestedLoopJoin,
                                 BlockOperator, BlockSort,
                                 BlockStackTreeAncJoin,
                                 BlockStackTreeDescJoin)
from repro.engine.context import EngineContext
from repro.engine.metrics import ExecutionMetrics
from repro.engine.nestedloop import NestedLoopJoin
from repro.engine.operators import Operator
from repro.engine.scan import IndexScan
from repro.engine.sort import SortOperator
from repro.engine.stackjoin import StackTreeAncJoin, StackTreeDescJoin
from repro.engine.tuples import MatchTuple, Schema

#: the two execution modes; block is the default everywhere.
ENGINE_NAMES = ("block", "tuple")


def validate_engine(engine: str) -> str:
    if engine not in ENGINE_NAMES:
        raise PlanError(f"unknown engine {engine!r}; expected one of "
                        f"{ENGINE_NAMES}")
    return engine


@dataclass
class ExecutionResult:
    """Everything one plan execution produced."""

    tuples: list[MatchTuple]
    schema: Schema
    metrics: ExecutionMetrics

    def __len__(self) -> int:
        return len(self.tuples)

    def bindings(self) -> list[dict[int, Region]]:
        """Results as binding dicts (pattern node id -> region)."""
        return [dict(zip(self.schema.node_ids, match))
                for match in self.tuples]

    def canonical(self) -> set[tuple[int, ...]]:
        """Order-independent identity set (for result comparison)."""
        return {self.schema.canonical_key(match) for match in self.tuples}

    @property
    def simulated_cost(self) -> float:
        return self.metrics.simulated_cost()


@dataclass
class FirstResultTiming:
    """Latency profile of a streaming execution.

    The paper motivates FP plans by their ability to "produce the
    initial result tuples quickly ... desirable in many applications,
    such as online querying" (Sec. 3.4).  ``first_seconds`` is the
    time until the requested number of results has been produced;
    ``total_seconds`` the time to drain the plan completely.
    """

    first_seconds: float
    total_seconds: float
    first_count: int
    total_count: int


class Executor:
    """Builds and drives operator trees for one engine context.

    *engine* selects the execution mode: ``"block"`` (the default)
    runs the columnar block-at-a-time operators of
    :mod:`repro.engine.blocks`; ``"tuple"`` runs the original
    Volcano-style iterators.  Both modes produce identical tuple
    sequences and identical cost-model counters — only wall-clock and
    the I/O diagnostics differ.
    """

    def __init__(self, context: EngineContext, pattern: QueryPattern,
                 engine: str = "block") -> None:
        self.context = context
        self.pattern = pattern
        self.engine = validate_engine(engine)

    def build(self, plan: PhysicalPlan,
              context: EngineContext | None = None) -> Operator:
        """Translate a plan subtree into an operator subtree.

        Operators capture *context*'s metrics object; executions pass a
        run-scoped context (:meth:`EngineContext.for_run`) so that
        concurrent runs never share counters.
        """
        context = context or self.context
        if isinstance(plan, IndexScanPlan):
            return IndexScan(self.pattern.node(plan.node_id), context)
        if isinstance(plan, SortPlan):
            return SortOperator(self.build(plan.child, context),
                                plan.by_node)
        if isinstance(plan, StructuralJoinPlan):
            ancestor = self.build(plan.ancestor_plan, context)
            descendant = self.build(plan.descendant_plan, context)
            if plan.algorithm is JoinAlgorithm.STACK_TREE_ANC:
                return StackTreeAncJoin(ancestor, descendant,
                                        plan.ancestor_node,
                                        plan.descendant_node, plan.axis)
            if plan.algorithm is JoinAlgorithm.STACK_TREE_DESC:
                return StackTreeDescJoin(ancestor, descendant,
                                         plan.ancestor_node,
                                         plan.descendant_node, plan.axis)
            return NestedLoopJoin(ancestor, descendant, plan.ancestor_node,
                                  plan.descendant_node, plan.axis)
        raise PlanError(f"unknown plan node type {type(plan).__name__}")

    def build_block(self, plan: PhysicalPlan,
                    context: EngineContext | None = None) -> BlockOperator:
        """Translate a plan subtree into a block-operator subtree."""
        context = context or self.context
        if isinstance(plan, IndexScanPlan):
            return BlockIndexScan(self.pattern.node(plan.node_id), context)
        if isinstance(plan, SortPlan):
            return BlockSort(self.build_block(plan.child, context),
                             plan.by_node)
        if isinstance(plan, StructuralJoinPlan):
            ancestor = self.build_block(plan.ancestor_plan, context)
            descendant = self.build_block(plan.descendant_plan, context)
            if plan.algorithm is JoinAlgorithm.STACK_TREE_ANC:
                return BlockStackTreeAncJoin(ancestor, descendant,
                                             plan.ancestor_node,
                                             plan.descendant_node,
                                             plan.axis)
            if plan.algorithm is JoinAlgorithm.STACK_TREE_DESC:
                return BlockStackTreeDescJoin(ancestor, descendant,
                                              plan.ancestor_node,
                                              plan.descendant_node,
                                              plan.axis)
            return BlockNestedLoopJoin(ancestor, descendant,
                                       plan.ancestor_node,
                                       plan.descendant_node, plan.axis)
        raise PlanError(f"unknown plan node type {type(plan).__name__}")

    def execute(self, plan: PhysicalPlan,
                engine: str | None = None) -> ExecutionResult:
        """Run *plan* to completion with run-private metrics.

        The shared context is never mutated: each execution builds its
        operator tree against a run-scoped context, so concurrent
        executions over one :class:`EngineContext` are safe.  Page and
        buffer counter deltas come from the shared pool, so under
        concurrency they attribute I/O approximately (aggregate totals
        stay exact); the simulated-cost counters are always private.
        """
        engine = (self.engine if engine is None
                  else validate_engine(engine))
        run = self.context.for_run()
        metrics = run.metrics
        pool = run.tag_index.pool
        io_before = pool.disk.stats.snapshot()
        hits_before = pool.stats.hits
        misses_before = pool.stats.misses
        if engine == "block":
            block_root = self.build_block(plan, run)
            started = time.perf_counter()
            block = block_root.block()
            metrics.wall_seconds = time.perf_counter() - started
            # shared row lists belong to the decode cache — hand out
            # a copy so callers can never corrupt cached postings
            tuples = list(block.rows) if block.shared else block.rows
            schema = block.schema
        else:
            root = self.build(plan, run)
            started = time.perf_counter()
            tuples = list(root.run())
            metrics.wall_seconds = time.perf_counter() - started
            schema = root.schema
        metrics.page_reads = pool.disk.stats.reads - io_before.reads
        metrics.page_writes = pool.disk.stats.writes - io_before.writes
        metrics.buffer_hits = pool.stats.hits - hits_before
        metrics.buffer_misses = pool.stats.misses - misses_before
        return ExecutionResult(tuples=tuples, schema=schema,
                               metrics=metrics)

    def time_to_first(self, plan: PhysicalPlan,
                      results: int = 1) -> FirstResultTiming:
        """Measure result latency: blocking operators delay the first
        tuple, pipelined plans deliver it almost immediately.

        Always runs the tuple engine — streaming latency is exactly
        the property block-at-a-time execution trades away.
        """
        root = self.build(plan, self.context.for_run())
        stream = root.run()
        started = time.perf_counter()
        produced = 0
        first_seconds = 0.0
        for _ in stream:
            produced += 1
            if produced == results:
                first_seconds = time.perf_counter() - started
                break
        first_count = produced
        if produced < results:
            first_seconds = time.perf_counter() - started
        for _ in stream:
            produced += 1
        total_seconds = time.perf_counter() - started
        return FirstResultTiming(first_seconds=first_seconds,
                                 total_seconds=total_seconds,
                                 first_count=first_count,
                                 total_count=produced)
