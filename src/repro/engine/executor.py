"""Plan execution: physical plan tree -> operator tree -> results.

The :class:`Executor` walks a :class:`~repro.core.plans.PhysicalPlan`,
instantiates the matching operators against an
:class:`~repro.engine.context.EngineContext`, runs the root to
completion, and returns an :class:`ExecutionResult` bundling the match
tuples, the output schema, the work counters, and wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import PlanError, QueryCancelled
from repro.core.pattern import QueryPattern
from repro.core.plans import (IndexScanPlan, JoinAlgorithm, PhysicalPlan,
                              SortPlan, StructuralJoinPlan)
from repro.document.node import Region
from repro.engine.blocks import (BlockIndexScan, BlockNestedLoopJoin,
                                 BlockOperator, BlockSort,
                                 BlockStackTreeAncJoin,
                                 BlockStackTreeDescJoin)
from repro.engine.context import EngineContext
from repro.engine.metrics import ExecutionMetrics
from repro.engine.nestedloop import NestedLoopJoin
from repro.engine.operators import Operator
from repro.engine.scan import IndexScan
from repro.engine.sort import SortOperator
from repro.engine.stackjoin import StackTreeAncJoin, StackTreeDescJoin
from repro.engine.tuples import MatchTuple, Schema
from repro.obs.spans import Span

#: the two execution modes; block is the default everywhere.
ENGINE_NAMES = ("block", "tuple")


def validate_engine(engine: str) -> str:
    if engine not in ENGINE_NAMES:
        raise PlanError(f"unknown engine {engine!r}; expected one of "
                        f"{ENGINE_NAMES}")
    return engine


def _operator_children(operator) -> tuple:
    """Input operators of an (iterator or block) operator, in the
    same order the corresponding plan node lists its children."""
    if hasattr(operator, "child"):
        return (operator.child,)
    if hasattr(operator, "ancestor_input"):
        return (operator.ancestor_input, operator.descendant_input)
    return ()


@dataclass
class ExecutionResult:
    """Everything one plan execution produced.

    ``span`` is the root of the per-operator span tree when the run
    was traced (``Executor.execute(..., spans=True)``), else ``None``.
    The span tree mirrors the plan tree node for node.
    """

    tuples: list[MatchTuple]
    schema: Schema
    metrics: ExecutionMetrics
    span: Span | None = None

    def __len__(self) -> int:
        return len(self.tuples)

    def bindings(self) -> list[dict[int, Region]]:
        """Results as binding dicts (pattern node id -> region)."""
        return [dict(zip(self.schema.node_ids, match))
                for match in self.tuples]

    def canonical(self) -> set[tuple[int, ...]]:
        """Order-independent identity set (for result comparison)."""
        return {self.schema.canonical_key(match) for match in self.tuples}

    @property
    def simulated_cost(self) -> float:
        return self.metrics.simulated_cost()


@dataclass
class FirstResultTiming:
    """Latency profile of a streaming execution.

    The paper motivates FP plans by their ability to "produce the
    initial result tuples quickly ... desirable in many applications,
    such as online querying" (Sec. 3.4).  ``first_seconds`` is the
    time until the requested number of results has been produced;
    ``total_seconds`` the time to drain the plan completely.
    """

    first_seconds: float
    total_seconds: float
    first_count: int
    total_count: int


class StreamingExecution:
    """One incrementally-consumed plan execution.

    Iterating the handle pulls match tuples out of the (tuple-engine)
    pipeline as they are produced — the property FP plans buy by being
    sort-free.  The handle records :attr:`first_seconds` (time to the
    first row), :attr:`total_seconds`, and :attr:`produced`, and checks
    the optional *cancel* predicate before every pull so a deadline or
    disconnect stops the operators mid-stream rather than after the
    fact; cancellation surfaces as :class:`QueryCancelled` and closes
    the pipeline.  Abandoning the iteration early (or calling
    :meth:`close`) also closes the pipeline and finalizes the metrics,
    so partial reads never leak open operator state.
    """

    def __init__(self, schema: Schema, metrics: ExecutionMetrics,
                 source: Iterator[MatchTuple], *,
                 cancel: Callable[[], bool] | None = None,
                 span: Span | None = None,
                 started: float | None = None,
                 on_finish: Callable[["StreamingExecution"], None]
                 | None = None) -> None:
        self.schema = schema
        self.metrics = metrics
        self.span = span
        self.produced = 0
        self.first_seconds: float | None = None
        self.total_seconds = 0.0
        self.cancelled = False
        self.finished = False
        self._source = source
        self._cancel = cancel
        self._started = started
        self._on_finish = on_finish
        self._iterator: Iterator[MatchTuple] | None = None

    def __iter__(self) -> Iterator[MatchTuple]:
        if self._iterator is None:
            self._iterator = self._rows()
        return self._iterator

    def elapsed(self) -> float:
        """Seconds since the stream started (0.0 before the first pull)."""
        if self._started is None:
            return 0.0
        if self.finished:
            return self.total_seconds
        return time.perf_counter() - self._started

    def _rows(self) -> Iterator[MatchTuple]:
        if self._started is None:
            self._started = time.perf_counter()
        try:
            for match in self._source:
                if self._cancel is not None and self._cancel():
                    self.cancelled = True
                    raise QueryCancelled(
                        f"query cancelled after {self.produced} rows")
                self.produced += 1
                if self.first_seconds is None:
                    self.first_seconds = time.perf_counter() - self._started
                yield match
            if self._cancel is not None and self._cancel():
                # cancel raced the final row; report it so callers see
                # a consistent cancelled outcome either way
                self.cancelled = True
                raise QueryCancelled(
                    f"query cancelled after {self.produced} rows")
        finally:
            self._finish()

    def close(self) -> None:
        """Stop early: close the pipeline and finalize the metrics."""
        if self._iterator is not None:
            self._iterator.close()
        else:
            self._finish()

    def drain(self) -> int:
        """Consume all remaining rows; returns the final row count."""
        for _ in self:
            pass
        return self.produced

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        if self._started is not None:
            self.total_seconds = time.perf_counter() - self._started
        close = getattr(self._source, "close", None)
        if close is not None:
            close()
        if self._on_finish is not None:
            self._on_finish(self)


def measure_time_to_first(stream: StreamingExecution,
                          results: int = 1) -> FirstResultTiming:
    """Drain *stream* and report when the *results*-th row arrived."""
    first_seconds: float | None = None
    for _ in stream:
        if first_seconds is None and stream.produced >= results:
            first_seconds = stream.elapsed()
    if first_seconds is None:
        first_seconds = stream.total_seconds
    return FirstResultTiming(first_seconds=first_seconds,
                             total_seconds=stream.total_seconds,
                             first_count=min(stream.produced, results),
                             total_count=stream.produced)


class Executor:
    """Builds and drives operator trees for one engine context.

    *engine* selects the execution mode: ``"block"`` (the default)
    runs the columnar block-at-a-time operators of
    :mod:`repro.engine.blocks`; ``"tuple"`` runs the original
    Volcano-style iterators.  Both modes produce identical tuple
    sequences and identical cost-model counters — only wall-clock and
    the I/O diagnostics differ.
    """

    def __init__(self, context: EngineContext, pattern: QueryPattern,
                 engine: str = "block") -> None:
        self.context = context
        self.pattern = pattern
        self.engine = validate_engine(engine)

    def build(self, plan: PhysicalPlan,
              context: EngineContext | None = None) -> Operator:
        """Translate a plan subtree into an operator subtree.

        Operators capture *context*'s metrics object; executions pass a
        run-scoped context (:meth:`EngineContext.for_run`) so that
        concurrent runs never share counters.
        """
        context = context or self.context
        if isinstance(plan, IndexScanPlan):
            return IndexScan(self.pattern.node(plan.node_id), context)
        if isinstance(plan, SortPlan):
            return SortOperator(self.build(plan.child, context),
                                plan.by_node)
        if isinstance(plan, StructuralJoinPlan):
            ancestor = self.build(plan.ancestor_plan, context)
            descendant = self.build(plan.descendant_plan, context)
            if plan.algorithm is JoinAlgorithm.STACK_TREE_ANC:
                return StackTreeAncJoin(ancestor, descendant,
                                        plan.ancestor_node,
                                        plan.descendant_node, plan.axis)
            if plan.algorithm is JoinAlgorithm.STACK_TREE_DESC:
                return StackTreeDescJoin(ancestor, descendant,
                                         plan.ancestor_node,
                                         plan.descendant_node, plan.axis)
            return NestedLoopJoin(ancestor, descendant, plan.ancestor_node,
                                  plan.descendant_node, plan.axis)
        raise PlanError(f"unknown plan node type {type(plan).__name__}")

    def build_block(self, plan: PhysicalPlan,
                    context: EngineContext | None = None) -> BlockOperator:
        """Translate a plan subtree into a block-operator subtree."""
        context = context or self.context
        if isinstance(plan, IndexScanPlan):
            return BlockIndexScan(self.pattern.node(plan.node_id), context)
        if isinstance(plan, SortPlan):
            return BlockSort(self.build_block(plan.child, context),
                             plan.by_node)
        if isinstance(plan, StructuralJoinPlan):
            ancestor = self.build_block(plan.ancestor_plan, context)
            descendant = self.build_block(plan.descendant_plan, context)
            if plan.algorithm is JoinAlgorithm.STACK_TREE_ANC:
                return BlockStackTreeAncJoin(ancestor, descendant,
                                             plan.ancestor_node,
                                             plan.descendant_node,
                                             plan.axis)
            if plan.algorithm is JoinAlgorithm.STACK_TREE_DESC:
                return BlockStackTreeDescJoin(ancestor, descendant,
                                              plan.ancestor_node,
                                              plan.descendant_node,
                                              plan.axis)
            return BlockNestedLoopJoin(ancestor, descendant,
                                       plan.ancestor_node,
                                       plan.descendant_node, plan.axis)
        raise PlanError(f"unknown plan node type {type(plan).__name__}")

    def instrument(self, root, plan: PhysicalPlan,
                   factors=None) -> Span:
        """Attach a span (and private metrics) to every operator.

        Each operator in *root*'s tree — iterator or block — gets its
        own :class:`~repro.engine.metrics.ExecutionMetrics`, so every
        counter increment is attributed to exactly one operator; the
        caller merges the span metrics back into the run totals after
        the run, which keeps per-operator shares summing exactly to
        the run's counters.  Must be called after ``build`` /
        ``build_block`` and before the run.
        """
        factors = factors or self.context.factors
        metrics = ExecutionMetrics(factors=factors)
        root.metrics = metrics
        span = Span(type(root).__name__, detail=root.describe(),
                    estimated_cardinality=plan.estimated_cardinality,
                    estimated_cost=plan.estimated_cost,
                    metrics=metrics)
        root._span = span
        children = _operator_children(root)
        plans = plan.children()
        if len(children) != len(plans):
            raise PlanError(
                f"operator tree does not mirror the plan: "
                f"{type(root).__name__} has {len(children)} inputs, "
                f"plan node has {len(plans)}")
        span.children = [self.instrument(child, child_plan, factors)
                         for child, child_plan in zip(children, plans)]
        return span

    def execute(self, plan: PhysicalPlan,
                engine: str | None = None,
                spans: bool | None = None) -> ExecutionResult:
        """Run *plan* to completion with run-private metrics.

        The shared context is never mutated: each execution builds its
        operator tree against a run-scoped context, so concurrent
        executions over one :class:`EngineContext` are safe.  Page and
        buffer counter deltas come from the shared pool, so under
        concurrency they attribute I/O approximately (aggregate totals
        stay exact); the simulated-cost counters are always private.

        *spans* enables per-operator tracing for this run (defaults to
        the context's ``tracing`` flag); the resulting span tree is
        returned on :attr:`ExecutionResult.span` and its per-operator
        counter shares sum exactly to the result's metrics.
        """
        engine = (self.engine if engine is None
                  else validate_engine(engine))
        if spans is None:
            spans = self.context.tracing
        run = self.context.for_run()
        metrics = run.metrics
        pool = run.tag_index.pool
        io_before = pool.disk.stats.snapshot()
        hits_before = pool.stats.hits
        misses_before = pool.stats.misses
        span_root: Span | None = None
        if engine == "block":
            block_root = self.build_block(plan, run)
            if spans:
                span_root = self.instrument(block_root, plan,
                                            run.factors)
            started = time.perf_counter()
            block = block_root.block()
            metrics.wall_seconds = time.perf_counter() - started
            # shared row lists belong to the decode cache — hand out
            # a copy so callers can never corrupt cached postings
            tuples = list(block.rows) if block.shared else block.rows
            schema = block.schema
        else:
            root = self.build(plan, run)
            if spans:
                span_root = self.instrument(root, plan, run.factors)
            started = time.perf_counter()
            tuples = list(root.run())
            metrics.wall_seconds = time.perf_counter() - started
            schema = root.schema
        if span_root is not None:
            # traced operators wrote to private counters; fold them
            # into the run totals so traced and untraced executions
            # report identical ExecutionMetrics
            for span in span_root.walk():
                metrics.merge(span.metrics)
        metrics.page_reads = pool.disk.stats.reads - io_before.reads
        metrics.page_writes = pool.disk.stats.writes - io_before.writes
        metrics.buffer_hits = pool.stats.hits - hits_before
        metrics.buffer_misses = pool.stats.misses - misses_before
        return ExecutionResult(tuples=tuples, schema=schema,
                               metrics=metrics, span=span_root)

    def stream(self, plan: PhysicalPlan, *,
               cancel: Callable[[], bool] | None = None,
               spans: bool = False,
               on_finish: Callable[[StreamingExecution], None]
               | None = None) -> StreamingExecution:
        """Run *plan* incrementally with run-private metrics.

        Always runs the tuple engine — streaming delivery is exactly
        the property block-at-a-time execution trades away.  The
        returned handle yields rows as the pipeline produces them;
        *cancel* is checked before every pull (see
        :class:`StreamingExecution`).  Page/buffer I/O deltas and span
        finalization happen when the stream finishes (drained,
        cancelled, or closed early), after which *on_finish* runs.
        """
        run = self.context.for_run()
        metrics = run.metrics
        pool = run.tag_index.pool
        io_before = pool.disk.stats.snapshot()
        hits_before = pool.stats.hits
        misses_before = pool.stats.misses
        root = self.build(plan, run)
        span_root: Span | None = None
        if spans:
            span_root = self.instrument(root, plan, run.factors)

        def finalize(stream: StreamingExecution) -> None:
            metrics.wall_seconds = stream.total_seconds
            if span_root is not None:
                # operators wrap their iterators, so span seconds and
                # output_rows were measured live; only the counters
                # need folding into the run totals
                for span in span_root.walk():
                    metrics.merge(span.metrics)
            metrics.page_reads = pool.disk.stats.reads - io_before.reads
            metrics.page_writes = (pool.disk.stats.writes
                                   - io_before.writes)
            metrics.buffer_hits = pool.stats.hits - hits_before
            metrics.buffer_misses = pool.stats.misses - misses_before
            if on_finish is not None:
                on_finish(stream)

        return StreamingExecution(root.schema, metrics, root.run(),
                                  cancel=cancel, span=span_root,
                                  on_finish=finalize)

    def time_to_first(self, plan: PhysicalPlan,
                      results: int = 1) -> FirstResultTiming:
        """Measure result latency: blocking operators delay the first
        tuple, pipelined plans deliver it almost immediately.

        Always runs the tuple engine — streaming latency is exactly
        the property block-at-a-time execution trades away.
        """
        return measure_time_to_first(self.stream(plan), results=results)
