"""Stack-Tree structural join operators (Al-Khalifa et al., ICDE 2002).

Both operators merge two document-ordered tuple streams — one supplying
bindings for the ancestor pattern node, one for the descendant — using
a stack of ancestor bindings.  Because all regions come from one tree,
any two overlapping regions are nested, which is the invariant that
makes the stack linear-time.

* :class:`StackTreeDescJoin` emits output ordered by the *descendant*
  binding.  It is fully streaming: cost is pure stack work
  (``2 |A| f_st`` in the cost model).
* :class:`StackTreeAncJoin` emits output ordered by the *ancestor*
  binding.  Results for an ancestor cannot be emitted until that
  ancestor leaves the stack, so the operator buffers them in the
  classic *self-list / inherit-list* structure — the buffering is what
  the cost model charges as ``2 |AB| f_IO``.

Intermediate streams may bind the same data node in many tuples, so
the operators work on *groups* of tuples sharing the join-column region
(see :func:`repro.engine.operators.group_by_column`) and emit group
cross-products.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.pattern import Axis
from repro.document.node import Region
from repro.engine.operators import (Operator, OrderCheckingIterator,
                                    group_by_column)
from repro.engine.tuples import MatchTuple


class _JoinBase(Operator):
    """Shared setup for the two stack-tree operators."""

    def __init__(self, ancestor_input: Operator, descendant_input: Operator,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis, ordered_by: int) -> None:
        schema = ancestor_input.schema.concat(descendant_input.schema)
        super().__init__(schema, ordered_by, ancestor_input.metrics)
        self.ancestor_input = ancestor_input
        self.descendant_input = descendant_input
        self.ancestor_node = ancestor_node
        self.descendant_node = descendant_node
        self.axis = axis

    def describe(self) -> str:
        return (f"{type(self).__name__}(${self.ancestor_node} "
                f"{self.axis} ${self.descendant_node})")

    def _grouped_inputs(self):
        ancestor_stream = OrderCheckingIterator(
            self.ancestor_input.run(), self.ancestor_input.schema,
            self.ancestor_node, label="ancestor input")
        descendant_stream = OrderCheckingIterator(
            self.descendant_input.run(), self.descendant_input.schema,
            self.descendant_node, label="descendant input")
        ancestor_groups = group_by_column(
            iter(ancestor_stream), self.ancestor_input.schema,
            self.ancestor_node)
        descendant_groups = group_by_column(
            iter(descendant_stream), self.descendant_input.schema,
            self.descendant_node)
        return ancestor_groups, descendant_groups

    def _qualifies(self, ancestor: Region, descendant: Region) -> bool:
        """Containment (plus the level test for parent/child edges)."""
        if ancestor.end < descendant.end:
            return False
        if self.axis is Axis.CHILD:
            return ancestor.level + 1 == descendant.level
        return True


class StackTreeDescJoin(_JoinBase):
    """Structural join producing output ordered by the descendant."""

    def __init__(self, ancestor_input: Operator, descendant_input: Operator,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis) -> None:
        super().__init__(ancestor_input, descendant_input,
                         ancestor_node, descendant_node, axis,
                         ordered_by=descendant_node)

    def _produce(self) -> Iterator[MatchTuple]:
        self.metrics.join_count += 1
        ancestor_groups, descendant_groups = self._grouped_inputs()
        stack: list[tuple[Region, list[MatchTuple]]] = []
        pending = next(ancestor_groups, None)
        for desc_region, desc_tuples in descendant_groups:
            while pending is not None and pending[0].start < desc_region.start:
                while stack and stack[-1][0].end < pending[0].start:
                    stack.pop()
                stack.append(pending)
                self.metrics.stack_tuple_ops += len(pending[1])
                pending = next(ancestor_groups, None)
            while stack and stack[-1][0].end < desc_region.start:
                stack.pop()
            for anc_region, anc_tuples in stack:
                if self._qualifies(anc_region, desc_region):
                    for desc_tuple in desc_tuples:
                        for anc_tuple in anc_tuples:
                            self.metrics.output_tuples += 1
                            yield anc_tuple + desc_tuple
        # The pull loop above stops at the first ancestor group past
        # the final descendant, which would leave the ancestor subtree
        # partially consumed — but the cost model prices an index scan
        # as f_I * n over the full candidate set, and the block engine
        # charges whole posting lists up front, so consumption (and
        # with it every consumption-driven counter) is made total.
        for _remainder in ancestor_groups:
            pass


class _AncEntry:
    """Stack entry of the Anc join: bindings plus buffered results."""

    __slots__ = ("region", "tuples", "self_blocks", "inherited")

    def __init__(self, region: Region, tuples: list[MatchTuple]) -> None:
        self.region = region
        self.tuples = tuples
        # groups of descendant tuples matched with this entry
        self.self_blocks: list[list[MatchTuple]] = []
        # fully-ordered output inherited from popped nested entries
        self.inherited: list[MatchTuple] = []

    def drain(self) -> list[MatchTuple]:
        """Expand buffered results, self pairs first, in order."""
        output: list[MatchTuple] = []
        for block in self.self_blocks:
            for anc_tuple in self.tuples:
                for desc_tuple in block:
                    output.append(anc_tuple + desc_tuple)
        output.extend(self.inherited)
        return output


class StackTreeAncJoin(_JoinBase):
    """Structural join producing output ordered by the ancestor."""

    def __init__(self, ancestor_input: Operator, descendant_input: Operator,
                 ancestor_node: int, descendant_node: int,
                 axis: Axis) -> None:
        super().__init__(ancestor_input, descendant_input,
                         ancestor_node, descendant_node, axis,
                         ordered_by=ancestor_node)

    def _produce(self) -> Iterator[MatchTuple]:
        self.metrics.join_count += 1
        ancestor_groups, descendant_groups = self._grouped_inputs()
        stack: list[_AncEntry] = []

        def pop_one() -> Iterator[MatchTuple]:
            entry = stack.pop()
            drained = entry.drain()
            if stack:
                stack[-1].inherited.extend(drained)
            else:
                self.metrics.output_tuples += len(drained)
                yield from drained

        pending = next(ancestor_groups, None)
        for desc_region, desc_tuples in descendant_groups:
            while pending is not None and pending[0].start < desc_region.start:
                while stack and stack[-1].region.end < pending[0].start:
                    yield from pop_one()
                stack.append(_AncEntry(pending[0], pending[1]))
                self.metrics.stack_tuple_ops += len(pending[1])
                pending = next(ancestor_groups, None)
            while stack and stack[-1].region.end < desc_region.start:
                yield from pop_one()
            for entry in stack:
                if self._qualifies(entry.region, desc_region):
                    entry.self_blocks.append(desc_tuples)
                    self.metrics.buffered_results += (
                        len(entry.tuples) * len(desc_tuples))
        while stack:
            yield from pop_one()
        # Exhaust the ancestor side for total consumption — same
        # rationale as in StackTreeDescJoin above.
        for _remainder in ancestor_groups:
            pass
