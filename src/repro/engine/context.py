"""Shared execution context: storage handles + metrics."""

from __future__ import annotations

from repro.core.cost import CostFactors
from repro.document.document import XmlDocument
from repro.engine.metrics import ExecutionMetrics
from repro.storage.store import ElementStore
from repro.storage.tagindex import TagIndex


class EngineContext:
    """Everything an operator tree needs to run.

    ``document`` is optional: when present, predicate evaluation reads
    node text/attributes from it directly; otherwise the element store
    is consulted (paying buffer-pool I/O, as a real system would).
    """

    def __init__(self, tag_index: TagIndex,
                 element_store: ElementStore | None = None,
                 document: XmlDocument | None = None,
                 factors: CostFactors | None = None) -> None:
        self.tag_index = tag_index
        self.element_store = element_store
        self.document = document
        self.metrics = ExecutionMetrics(factors=factors or CostFactors())

    def fresh_metrics(self) -> ExecutionMetrics:
        """Reset and return the metrics object for a new run."""
        self.metrics = ExecutionMetrics(factors=self.metrics.factors)
        return self.metrics
