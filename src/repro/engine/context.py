"""Shared execution context: storage handles + metrics.

A context created by the API layer is *shared* state: the tag index,
element store and document it references are used by every execution
against the database.  Metrics, by contrast, are *per-execution*
state: two plans running at the same time (the concurrent serving
path, :meth:`repro.api.Database.query_many`) must never write into
the same counters.  :meth:`EngineContext.for_run` hands each
execution its own run-scoped context — same storage handles, fresh
:class:`~repro.engine.metrics.ExecutionMetrics` — and the caller
merges the run's counters into aggregate totals explicitly.
"""

from __future__ import annotations

from repro.core.cost import CostFactors
from repro.document.document import XmlDocument
from repro.engine.metrics import ExecutionMetrics
from repro.storage.store import ElementStore
from repro.storage.tagindex import TagIndex


class EngineContext:
    """Everything an operator tree needs to run.

    ``document`` is optional: when present, predicate evaluation reads
    node text/attributes from it directly; otherwise the element store
    is consulted (paying buffer-pool I/O, as a real system would).
    """

    def __init__(self, tag_index: TagIndex,
                 element_store: ElementStore | None = None,
                 document: XmlDocument | None = None,
                 factors: CostFactors | None = None,
                 tracing: bool = False) -> None:
        self.tag_index = tag_index
        self.element_store = element_store
        self.document = document
        self.factors = factors or CostFactors()
        self.metrics = ExecutionMetrics(factors=self.factors)
        #: when True, executions against this context record a span
        #: per operator (see :mod:`repro.obs.spans`).  Off by default:
        #: the untraced hot path pays a single ``is None`` check per
        #: operator per run, nothing per tuple.
        self.tracing = tracing

    def for_run(self) -> "EngineContext":
        """A run-scoped context: shared storage, private metrics.

        Operators capture ``context.metrics`` at build time, so every
        execution must build its operator tree against its own run
        context — otherwise concurrent runs cross-pollute counters.
        """
        return EngineContext(self.tag_index, self.element_store,
                             self.document, factors=self.factors,
                             tracing=self.tracing)

    def fresh_metrics(self) -> ExecutionMetrics:
        """Reset and return the metrics object for a new run.

        Retained for callers that drive operators by hand; the
        executor itself uses :meth:`for_run` so the shared context is
        never mutated by an execution.
        """
        self.metrics = ExecutionMetrics(factors=self.factors)
        return self.metrics
