"""Holistic twig join (TwigStack) — the paper's future-work baseline.

The paper's Sec. 6 names "multi-way structural joins as in [5]"
(Bruno, Koudas, Srivastava — *Holistic Twig Joins*, SIGMOD 2002) as the
next access method to integrate.  This module implements that
algorithm so the repository can compare the binary-join plans the
optimizers produce against a single holistic operator:

* **Phase 1** streams every pattern node's candidates through a chain
  of linked stacks, using ``getNext``'s look-ahead to push only
  elements that participate in some root-to-leaf *path* solution
  (optimal for ancestor/descendant edges; parent/child edges are
  filtered during expansion, as in the original paper's discussion).
* **Phase 2** merge-joins the per-leaf path solutions on their shared
  pattern prefix into full twig matches.

The matcher reads the same tag-index streams as the iterator engine
and reports into the same :class:`~repro.engine.metrics.ExecutionMetrics`
(stack pushes count as stack work; buffered path solutions count as
buffered results), so holistic-vs-binary comparisons use one currency.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.core.pattern import Axis, QueryPattern
from repro.document.node import Region
from repro.engine.context import EngineContext
from repro.engine.executor import ExecutionResult
from repro.engine.scan import IndexScan
from repro.engine.tuples import MatchTuple, Schema

#: Sentinel region returned by exhausted cursors (+infinity start).
_END = Region(2**31 - 2, 2**31 - 2, 0)


class _Cursor:
    """Advancing cursor over one pattern node's candidate regions."""

    __slots__ = ("regions", "position")

    def __init__(self, regions: list[Region]) -> None:
        self.regions = regions
        self.position = 0

    @property
    def eof(self) -> bool:
        return self.position >= len(self.regions)

    @property
    def head(self) -> Region:
        if self.eof:
            return _END
        return self.regions[self.position]

    def advance(self) -> None:
        if not self.eof:
            self.position += 1


class _StackEntry:
    """A stack element: region + link to the parent stack's top."""

    __slots__ = ("region", "parent_index")

    def __init__(self, region: Region, parent_index: int) -> None:
        self.region = region
        self.parent_index = parent_index


class TwigStackMatcher:
    """Evaluates a whole pattern with one holistic twig join."""

    def __init__(self, pattern: QueryPattern,
                 context: EngineContext) -> None:
        self.pattern = pattern
        self.context = context
        self.metrics = context.metrics
        self._cursors: dict[int, _Cursor] = {}
        self._stacks: dict[int, list[_StackEntry]] = {}
        # per leaf: accumulated path solutions (dict node -> region)
        self._paths: dict[int, list[dict[int, Region]]] = {}

    # -- phase 1: path solutions -----------------------------------------

    def _load_streams(self) -> None:
        self._subtree_leaves: dict[int, list[int]] = {}
        for node in self.pattern.nodes:
            scan = IndexScan(node, self.context)
            regions = [match[0] for match in scan.run()]
            self._cursors[node.node_id] = _Cursor(regions)
            self._stacks[node.node_id] = []
            if not self.pattern.children(node.node_id):
                self._paths[node.node_id] = []
        for node in self.pattern.nodes:
            self._subtree_leaves[node.node_id] = [
                leaf for leaf in self.pattern.subtree_nodes(node.node_id)
                if not self.pattern.children(leaf)]

    def _live(self, q: int) -> bool:
        """Can the subtree of *q* still emit new path solutions?

        A branch whose leaf streams are all exhausted is *dead*: its
        path solutions are already buffered, and new pushes above it
        only matter for the remaining live branches — so dead branches
        are excluded from the look-ahead instead of terminating it
        (the original presentation leaves this stream-end case open).
        """
        return any(not self._cursors[leaf].eof
                   for leaf in self._subtree_leaves[q])

    def _get_next(self, q: int) -> int:
        """The TwigStack look-ahead: the next node whose head element
        is guaranteed extensible into a path solution below ``q``."""
        children = [child for child in self.pattern.children(q)
                    if self._live(child)]
        if not children:
            return q
        min_child = -1
        max_child = -1
        for child in children:
            result = self._get_next(child)
            if result != child:
                return result
            head = self._cursors[child].head.start
            if min_child < 0 or head < self._cursors[min_child].head.start:
                min_child = child
            if max_child < 0 or head > self._cursors[max_child].head.start:
                max_child = child
        cursor = self._cursors[q]
        max_start = self._cursors[max_child].head.start
        while cursor.head.end < max_start:
            cursor.advance()
        if cursor.head.start < self._cursors[min_child].head.start:
            return q
        return min_child

    def _clean_stack(self, q: int, next_start: int) -> None:
        stack = self._stacks[q]
        while stack and stack[-1].region.end < next_start:
            stack.pop()

    def run(self) -> ExecutionResult:
        """Produce all matches of the pattern."""
        self._load_streams()
        pattern = self.pattern
        root = pattern.root
        while self._live(root):
            q = self._get_next(root)
            cursor = self._cursors[q]
            if cursor.eof:
                break  # returned subtree has no extensible head left
            parent_edge = pattern.parent_edge(q)
            if parent_edge is not None:
                self._clean_stack(parent_edge.parent, cursor.head.start)
            if parent_edge is None or self._stacks[parent_edge.parent]:
                self._clean_stack(q, cursor.head.start)
                parent_top = (len(self._stacks[parent_edge.parent]) - 1
                              if parent_edge is not None else -1)
                entry = _StackEntry(cursor.head, parent_top)
                self.metrics.stack_tuple_ops += 1
                if pattern.children(q):
                    self._stacks[q].append(entry)
                else:
                    self._stacks[q].append(entry)
                    self._emit_path_solutions(q)
                    self._stacks[q].pop()
            cursor.advance()
        return self._merge_paths()

    def _emit_path_solutions(self, leaf: int) -> None:
        """Expand the stack chain of *leaf* into path solutions."""
        solutions = self._paths[leaf]

        def expand(q: int, index: int,
                   binding: dict[int, Region]) -> None:
            entry = self._stacks[q][index]
            binding[q] = entry.region
            edge = self.pattern.parent_edge(q)
            if edge is None:
                solutions.append(dict(binding))
                self.metrics.buffered_results += 1
            else:
                parent = edge.parent
                for parent_index in range(entry.parent_index + 1):
                    parent_region = self._stacks[parent][
                        parent_index].region
                    if edge.axis is Axis.CHILD and (
                            parent_region.level + 1
                            != entry.region.level):
                        continue
                    expand(parent, parent_index, binding)
            del binding[q]

        expand(leaf, len(self._stacks[leaf]) - 1, {})

    # -- phase 2: merge ---------------------------------------------------------

    def _merge_paths(self) -> ExecutionResult:
        pattern = self.pattern
        leaves = sorted(self._paths)
        if not leaves:
            raise PlanError("pattern has no leaves")  # pragma: no cover
        combined = self._paths[leaves[0]]
        covered = set(self._path_nodes(leaves[0]))
        for leaf in leaves[1:]:
            incoming = self._paths[leaf]
            incoming_nodes = set(self._path_nodes(leaf))
            shared = sorted(covered & incoming_nodes)
            index: dict[tuple[Region, ...],
                        list[dict[int, Region]]] = {}
            for binding in incoming:
                key = tuple(binding[node] for node in shared)
                index.setdefault(key, []).append(binding)
            merged: list[dict[int, Region]] = []
            for binding in combined:
                key = tuple(binding[node] for node in shared)
                for other in index.get(key, ()):
                    merged.append({**binding, **other})
            combined = merged
            covered |= incoming_nodes

        schema = Schema(tuple(sorted(covered)))
        tuples: list[MatchTuple] = [
            tuple(binding[node] for node in schema.node_ids)
            for binding in combined]
        tuples.sort(key=lambda match: match[0].start)
        self.metrics.output_tuples += len(tuples)
        return ExecutionResult(tuples=tuples, schema=schema,
                               metrics=self.metrics)

    def _path_nodes(self, leaf: int) -> list[int]:
        """Pattern nodes on the root-to-leaf path of *leaf*."""
        nodes = [leaf]
        edge = self.pattern.parent_edge(leaf)
        while edge is not None:
            nodes.append(edge.parent)
            edge = self.pattern.parent_edge(edge.parent)
        nodes.reverse()
        return nodes


def holistic_matches(pattern: QueryPattern,
                     context: EngineContext) -> ExecutionResult:
    """Convenience wrapper: evaluate *pattern* with one TwigStack."""
    import time

    run = context.for_run()
    metrics = run.metrics
    matcher = TwigStackMatcher(pattern, run)
    started = time.perf_counter()
    result = matcher.run()
    metrics.wall_seconds = time.perf_counter() - started
    return result
