"""``python -m repro`` — see :mod:`repro.cli`.

The ``__name__`` guard is load-bearing: ``--shards`` starts
spawn-method worker processes, and spawn re-imports the main module
(as ``__mp_main__``) in every child — without the guard each worker
would re-run the CLI command recursively.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
