"""AST for the XPath subset.

The AST is deliberately close to the tree-pattern model: a
:class:`LocationPath` is a list of :class:`Step`, each step carrying a
name test, value comparisons, and nested path predicates (which become
branches of the pattern tree).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ValueComparison:
    """``text() = 'x'``, ``@year >= '2000'``, or bare ``. = 'x'``."""

    subject: str  # "text" or "attribute"
    op: str
    value: str
    attribute: str = ""


@dataclass(frozen=True, slots=True)
class PathPredicate:
    """An existential nested path (``[.//a/b]``), optionally with a
    trailing comparison applied to its last step."""

    path: "LocationPath"
    comparison: ValueComparison | None = None


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: axis + name test + predicates."""

    axis: str  # "child" or "descendant"
    name: str  # tag name or "*"
    comparisons: tuple[ValueComparison, ...] = ()
    paths: tuple[PathPredicate, ...] = ()


@dataclass(frozen=True, slots=True)
class LocationPath:
    """A sequence of steps; ``absolute`` is True for paths from the
    document root."""

    steps: tuple[Step, ...]
    absolute: bool = True

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a location path needs at least one step")
