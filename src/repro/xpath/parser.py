"""Recursive-descent parser + pattern compiler for the XPath subset.

:func:`parse_xpath` produces the AST; :func:`compile_xpath` lowers the
AST into a :class:`~repro.core.pattern.QueryPattern`, mapping each step
to a pattern node, ``/`` to CHILD edges, ``//`` to DESCENDANT edges,
and nested path predicates to pattern-tree branches.  The result node
of the outer path becomes the pattern's ``order_by`` node.
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.core.pattern import (Axis, PatternBuilder, Predicate,
                                QueryPattern)
from repro.xpath.ast import (LocationPath, PathPredicate, Step,
                             ValueComparison)
from repro.xpath.lexer import Token, TokenKind, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise XPathSyntaxError(
                f"expected {kind.value!r}, found {token.value!r}",
                token.position)
        return self._advance()

    # -- grammar ----------------------------------------------------------------

    def parse_path(self, absolute: bool = True) -> LocationPath:
        steps = [self._parse_axis_and_step(first=True, absolute=absolute)]
        while self._peek().kind in (TokenKind.SLASH,
                                    TokenKind.DOUBLE_SLASH):
            steps.append(self._parse_axis_and_step(first=False,
                                                   absolute=absolute))
        return LocationPath(tuple(steps), absolute=absolute)

    def _parse_axis_and_step(self, first: bool, absolute: bool) -> Step:
        token = self._peek()
        if token.kind is TokenKind.DOUBLE_SLASH:
            self._advance()
            axis = "descendant"
        elif token.kind is TokenKind.SLASH:
            self._advance()
            axis = "child"
        elif first and not absolute:
            # relative paths may start directly with a name test
            axis = "child"
        else:
            raise XPathSyntaxError(
                f"expected '/' or '//', found {token.value!r}",
                token.position)
        return self._parse_step(axis)

    def _parse_step(self, axis: str) -> Step:
        token = self._peek()
        if token.kind is TokenKind.STAR:
            self._advance()
            name = "*"
        elif token.kind is TokenKind.NAME:
            name = self._advance().value
        else:
            raise XPathSyntaxError(
                f"expected a name test, found {token.value!r}",
                token.position)
        comparisons: list[ValueComparison] = []
        paths: list[PathPredicate] = []
        while self._peek().kind is TokenKind.LBRACKET:
            self._advance()
            self._parse_predicate_body(comparisons, paths)
            self._expect(TokenKind.RBRACKET)
        return Step(axis, name, tuple(comparisons), tuple(paths))

    def _parse_predicate_body(self, comparisons: list[ValueComparison],
                              paths: list[PathPredicate]) -> None:
        while True:
            self._parse_predicate_term(comparisons, paths)
            if self._peek().kind is TokenKind.AND:
                self._advance()
                continue
            return

    def _parse_predicate_term(self, comparisons: list[ValueComparison],
                              paths: list[PathPredicate]) -> None:
        token = self._peek()
        if token.kind is TokenKind.AT:
            self._advance()
            attribute = self._expect(TokenKind.NAME).value
            op, value = self._parse_comparison_tail()
            comparisons.append(ValueComparison("attribute", op, value,
                                               attribute))
        elif token.kind is TokenKind.TEXT_FN:
            self._advance()
            op, value = self._parse_comparison_tail()
            comparisons.append(ValueComparison("text", op, value))
        elif token.kind is TokenKind.DOT:
            self._advance()
            next_token = self._peek()
            if next_token.kind in (TokenKind.SLASH, TokenKind.DOUBLE_SLASH):
                self._parse_relative_path_predicate(paths)
            else:
                op, value = self._parse_comparison_tail()
                comparisons.append(ValueComparison("text", op, value))
        elif (token.kind is TokenKind.NAME
              and token.value == "contains"
              and self._tokens[self._index + 1].kind
              is TokenKind.LPAREN):
            comparisons.append(self._parse_contains())
        elif token.kind in (TokenKind.NAME, TokenKind.STAR,
                            TokenKind.SLASH, TokenKind.DOUBLE_SLASH):
            self._parse_relative_path_predicate(paths)
        else:
            raise XPathSyntaxError(
                f"unsupported predicate starting at {token.value!r}",
                token.position)

    def _parse_relative_path_predicate(self,
                                       paths: list[PathPredicate]) -> None:
        path = self.parse_path(absolute=False)
        comparison: ValueComparison | None = None
        if self._peek().kind is TokenKind.OPERATOR:
            op, value = self._parse_comparison_tail()
            comparison = ValueComparison("text", op, value)
        paths.append(PathPredicate(path, comparison))

    def _parse_contains(self) -> ValueComparison:
        """``contains(text(), 'x')`` / ``contains(@attr, 'x')`` /
        ``contains(., 'x')`` — substring match on the subject."""
        self._advance()  # contains
        self._expect(TokenKind.LPAREN)
        token = self._peek()
        if token.kind is TokenKind.AT:
            self._advance()
            subject, attribute = "attribute", self._expect(
                TokenKind.NAME).value
        elif token.kind in (TokenKind.TEXT_FN, TokenKind.DOT):
            self._advance()
            subject, attribute = "text", ""
        else:
            raise XPathSyntaxError(
                f"contains() expects text(), '.' or an attribute, "
                f"found {token.value!r}", token.position)
        self._expect(TokenKind.COMMA)
        token = self._peek()
        if token.kind not in (TokenKind.LITERAL, TokenKind.NUMBER):
            raise XPathSyntaxError(
                f"expected a literal, found {token.value!r}",
                token.position)
        self._advance()
        self._expect(TokenKind.RPAREN)
        return ValueComparison(subject, "contains", token.value,
                               attribute)

    def _parse_comparison_tail(self) -> tuple[str, str]:
        op = self._expect(TokenKind.OPERATOR).value
        token = self._peek()
        if token.kind in (TokenKind.LITERAL, TokenKind.NUMBER):
            self._advance()
            return op, token.value
        raise XPathSyntaxError(
            f"expected a literal, found {token.value!r}", token.position)


def parse_xpath(text: str) -> LocationPath:
    """Parse an XPath string into its AST."""
    if not text.strip():
        raise XPathSyntaxError("empty XPath expression")
    parser = _Parser(tokenize(text))
    path = parser.parse_path(absolute=True)
    trailing = parser._peek()
    if trailing.kind is not TokenKind.END:
        raise XPathSyntaxError(
            f"unexpected trailing input {trailing.value!r}",
            trailing.position)
    return path


def compile_xpath(text: str,
                  order_by_result: bool = True) -> QueryPattern:
    """Compile an XPath string into a :class:`QueryPattern`.

    When *order_by_result* is set (the default), the pattern's
    ``order_by`` is the last step of the outer path — the nodes the
    query actually returns.
    """
    path = parse_xpath(text)
    builder = PatternBuilder()
    result_node = _lower_path(builder, path, parent=None)
    return builder.finish(order_by=result_node if order_by_result else None)


def _lower_path(builder: PatternBuilder, path: LocationPath,
                parent: int | None) -> int:
    """Add a path's steps to the builder; returns the last step's node."""
    current = parent
    for step in path.steps:
        predicates = tuple(
            Predicate(kind=comparison.subject, op=comparison.op,
                      value=comparison.value, name=comparison.attribute)
            for comparison in step.comparisons)
        node_id = builder.node(step.name, predicates)
        if current is not None:
            axis = (Axis.DESCENDANT if step.axis == "descendant"
                    else Axis.CHILD)
            builder.edge(current, node_id, axis)
        for path_predicate in step.paths:
            last = _lower_path(builder, path_predicate.path, node_id)
            if path_predicate.comparison is not None:
                _attach_comparison(builder, last, path_predicate.comparison)
        current = node_id
    assert current is not None
    return current


def _attach_comparison(builder: PatternBuilder, node_id: int,
                       comparison: ValueComparison) -> None:
    """Attach a trailing comparison (``[name = 'Ada']``) to the last
    step of a nested path."""
    builder.add_predicate(node_id, Predicate(
        kind=comparison.subject, op=comparison.op,
        value=comparison.value, name=comparison.attribute))
