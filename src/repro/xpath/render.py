"""Render query patterns back to XPath — the compiler's inverse.

Useful for logging, plan explanation and interop: any
:class:`~repro.core.pattern.QueryPattern` can be shown as the XPath
expression that would compile back to it.  The renderer picks a
*spine* — the root-to-result path (the ``order_by`` node when the
pattern has one, otherwise the deepest leaf) — and folds every other
branch into a nested path predicate, exactly mirroring how
:func:`repro.xpath.compile_xpath` lowers predicates into branches.

``compile_xpath(pattern_to_xpath(p))`` yields a pattern isomorphic to
``p`` (node ids are renumbered by traversal order; compare with
:func:`pattern_signature`).
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.core.pattern import (Axis, PatternNode, Predicate,
                                QueryPattern)


def _quote(value: str) -> str:
    """Pick a quote character the value does not contain."""
    if "'" not in value:
        return f"'{value}'"
    if '"' not in value:
        return f'"{value}"'
    raise XPathSyntaxError(
        "cannot render a literal containing both quote characters")


def _render_predicate(predicate: Predicate) -> str:
    subject = ("text()" if predicate.kind == "text"
               else f"@{predicate.name}")
    if predicate.op == "contains":
        return f"contains({subject}, {_quote(predicate.value)})"
    return f"{subject} {predicate.op} {_quote(predicate.value)}"


def _axis_token(axis: Axis, leading: bool) -> str:
    if axis is Axis.DESCENDANT:
        return ".//" if leading else "//"
    return "" if leading else "/"


def pattern_to_xpath(pattern: QueryPattern) -> str:
    """Render *pattern* as an XPath string."""
    spine = _spine(pattern)
    parts: list[str] = []
    for position, node_id in enumerate(spine):
        if position == 0:
            edge_axis = Axis.DESCENDANT  # absolute paths start with //
        else:
            edge_axis = pattern.edge_between(
                spine[position - 1], node_id).axis
        token = "//" if edge_axis is Axis.DESCENDANT else "/"
        parts.append(token + _render_step(pattern, node_id,
                                          exclude=set(spine)))
    return "".join(parts)


def _render_step(pattern: QueryPattern, node_id: int,
                 exclude: set[int]) -> str:
    node: PatternNode = pattern.node(node_id)
    rendered = node.tag
    for predicate in node.predicates:
        rendered += f"[{_render_predicate(predicate)}]"
    for edge in pattern.child_edges(node_id):
        if edge.child in exclude:
            continue
        rendered += f"[{_render_branch(pattern, edge.child, edge.axis)}]"
    return rendered


def _render_branch(pattern: QueryPattern, node_id: int,
                   axis: Axis) -> str:
    """A non-spine branch as a relative path predicate."""
    rendered = _axis_token(axis, leading=True)
    rendered += _render_step(pattern, node_id, exclude=set())
    return rendered


def _spine(pattern: QueryPattern) -> list[int]:
    """Root-to-result node ids (order_by, else the deepest leaf)."""
    target = pattern.order_by
    if target is None:
        depths = {pattern.root: 0}
        deepest = pattern.root
        for node_id in pattern.walk_preorder():
            for child in pattern.children(node_id):
                depths[child] = depths[node_id] + 1
                if depths[child] > depths[deepest]:
                    deepest = child
        target = deepest
    path = [target]
    edge = pattern.parent_edge(target)
    while edge is not None:
        path.append(edge.parent)
        edge = pattern.parent_edge(edge.parent)
    path.reverse()
    return path


def pattern_signature(pattern: QueryPattern,
                      node_id: int | None = None) -> tuple:
    """Order- and id-independent structural identity of a pattern.

    Two patterns are isomorphic (same tags, predicates, axes and tree
    shape) iff their signatures compare equal — the comparison the
    render/compile round-trip tests use, since compilation renumbers
    node ids.
    """
    if node_id is None:
        node_id = pattern.root
    node = pattern.node(node_id)
    children = tuple(sorted(
        (str(edge.axis), pattern_signature(pattern, edge.child))
        for edge in pattern.child_edges(node_id)))
    predicates = tuple(sorted(str(p) for p in node.predicates))
    return (node.tag, predicates, children)
