"""Tokenizer for the XPath subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import XPathSyntaxError


class TokenKind(enum.Enum):
    SLASH = "/"
    DOUBLE_SLASH = "//"
    NAME = "name"
    STAR = "*"
    LBRACKET = "["
    RBRACKET = "]"
    AT = "@"
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    TEXT_FN = "text()"
    OPERATOR = "op"
    LITERAL = "literal"
    NUMBER = "number"
    AND = "and"
    END = "end"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    value: str
    position: int


_NAME_START = set("abcdefghijklmnopqrstuvwxyz"
                  "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-._")
_OPERATOR_STARTS = set("=!<>")


def tokenize(text: str) -> list[Token]:
    """Split an XPath string into tokens, ending with an END token."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char in " \t\r\n":
            position += 1
            continue
        if char == "/":
            if text.startswith("//", position):
                tokens.append(Token(TokenKind.DOUBLE_SLASH, "//", position))
                position += 2
            else:
                tokens.append(Token(TokenKind.SLASH, "/", position))
                position += 1
        elif char == "*":
            tokens.append(Token(TokenKind.STAR, "*", position))
            position += 1
        elif char == "[":
            tokens.append(Token(TokenKind.LBRACKET, "[", position))
            position += 1
        elif char == "]":
            tokens.append(Token(TokenKind.RBRACKET, "]", position))
            position += 1
        elif char == "@":
            tokens.append(Token(TokenKind.AT, "@", position))
            position += 1
        elif char == ".":
            tokens.append(Token(TokenKind.DOT, ".", position))
            position += 1
        elif char == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", position))
            position += 1
        elif char == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", position))
            position += 1
        elif char == ",":
            tokens.append(Token(TokenKind.COMMA, ",", position))
            position += 1
        elif char in _OPERATOR_STARTS:
            if text.startswith(("<=", ">=", "!="), position):
                tokens.append(Token(TokenKind.OPERATOR,
                                    text[position:position + 2], position))
                position += 2
            elif char == "!":
                raise XPathSyntaxError("'!' must be followed by '='",
                                       position)
            else:
                tokens.append(Token(TokenKind.OPERATOR, char, position))
                position += 1
        elif char in ("'", '"'):
            end = text.find(char, position + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal",
                                       position)
            tokens.append(Token(TokenKind.LITERAL,
                                text[position + 1:end], position))
            position = end + 1
        elif char.isdigit():
            start = position
            while position < length and (text[position].isdigit()
                                         or text[position] == "."):
                position += 1
            tokens.append(Token(TokenKind.NUMBER, text[start:position],
                                start))
        elif char in _NAME_START:
            start = position
            while position < length and text[position] in _NAME_CHARS:
                position += 1
            name = text[start:position]
            if name == "text" and text.startswith("()", position):
                tokens.append(Token(TokenKind.TEXT_FN, "text()", start))
                position += 2
            elif name == "and":
                tokens.append(Token(TokenKind.AND, "and", start))
            else:
                tokens.append(Token(TokenKind.NAME, name, start))
        else:
            raise XPathSyntaxError(f"unexpected character {char!r}",
                                   position)
    tokens.append(Token(TokenKind.END, "", length))
    return tokens
