"""XPath front-end: compile a practical XPath subset to query patterns.

Supported grammar (the fragment that maps onto tree-pattern matching,
which is what the paper's Sec. 2.1 assumes)::

    path      := ("/" | "//") step (("/" | "//") step)*
    step      := nametest predicate*
    nametest  := NAME | "*"
    predicate := "[" expr "]"
    expr      := relpath
               | relpath? comparison
               | "text()" comparison
               | "@" NAME comparison
    relpath   := step (("/" | "//") step)*
    comparison:= ("=" | "!=" | "<" | "<=" | ">" | ">=") literal

Examples::

    //manager[.//employee/name]//department/name
    //book[@year >= '2000']/title
    //manager//employee[name = 'Ada']

Every step becomes a pattern node; `/` edges are parent/child, `//`
edges ancestor/descendant.  The *result node* of the path (its last
step) becomes the pattern's ``order_by`` node, matching how Timber
pipelines pattern matches into later operators.
"""

from repro.xpath.lexer import Token, TokenKind, tokenize
from repro.xpath.ast import (LocationPath, Step, ValueComparison,
                             PathPredicate)
from repro.xpath.parser import compile_xpath, parse_xpath
from repro.xpath.render import pattern_signature, pattern_to_xpath

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "LocationPath",
    "Step",
    "ValueComparison",
    "PathPredicate",
    "compile_xpath",
    "parse_xpath",
    "pattern_signature",
    "pattern_to_xpath",
]
