"""Minimal asyncio HTTP client for the tests and the load harness.

Speaks exactly the dialect :mod:`repro.server.http` serves: HTTP/1.1
with keep-alive, fixed-length bodies and chunked transfer decoding.
``HttpClient`` holds one reusable connection; :func:`fetch` is the
one-shot convenience.  The streamed read path yields decoded chunks
as they arrive, which is how the harness timestamps first results.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator

__all__ = ["ClientResponse", "HttpClient", "fetch"]


@dataclass
class ClientResponse:
    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))

    def text(self) -> str:
        return self.body.decode("utf-8")


class HttpClient:
    """One keep-alive connection to the query server."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def _connect(self) -> None:
        if self._writer is None or self._writer.is_closing():
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def _send(self, method: str, path: str,
                    headers: dict[str, str] | None,
                    body: bytes) -> None:
        await self._connect()
        assert self._writer is not None
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {self.host}:{self.port}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body:
            lines.append(f"Content-Length: {len(body)}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()

    async def _read_head(self) -> ClientResponse:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").strip().split(None, 2)
        status = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return ClientResponse(status=status, reason=reason,
                              headers=headers)

    async def request(self, method: str, path: str,
                      headers: dict[str, str] | None = None,
                      body: bytes = b"",
                      timeout: float = 30.0) -> ClientResponse:
        """Send one request and read the complete response body."""
        async def run() -> ClientResponse:
            await self._send(method, path, headers, body)
            response = await self._read_head()
            chunks = []
            async for chunk in self._read_body(response):
                chunks.append(chunk)
            response.body = b"".join(chunks)
            return response

        return await asyncio.wait_for(run(), timeout)

    async def stream(self, method: str, path: str,
                     headers: dict[str, str] | None = None,
                     body: bytes = b"",
                     timeout: float = 30.0
                     ) -> "tuple[ClientResponse, AsyncIterator[bytes]]":
        """Send one request; the response body arrives incrementally.

        Returns the head (status + headers) and an async iterator of
        body chunks — for chunked responses, one element per chunk as
        the server flushed it.  *timeout* bounds the head read only;
        the caller owns pacing of the body.
        """
        await asyncio.wait_for(
            self._send(method, path, headers, body), timeout)
        response = await asyncio.wait_for(self._read_head(), timeout)
        return response, self._read_body(response)

    async def _read_body(self, response: ClientResponse
                         ) -> AsyncIterator[bytes]:
        assert self._reader is not None
        encoding = response.headers.get("transfer-encoding", "")
        if "chunked" in encoding.lower():
            while True:
                size_line = await self._reader.readline()
                size = int(size_line.strip() or b"0", 16)
                if size == 0:
                    await self._reader.readline()  # trailing CRLF
                    return
                chunk = await self._reader.readexactly(size)
                await self._reader.readexactly(2)  # CRLF
                yield chunk
            return
        length = int(response.headers.get("content-length", "0"))
        if length:
            yield await self._reader.readexactly(length)


async def fetch(host: str, port: int, method: str, path: str,
                headers: dict[str, str] | None = None,
                body: bytes = b"",
                timeout: float = 30.0) -> ClientResponse:
    """One-shot request on a fresh connection."""
    client = HttpClient(host, port)
    try:
        return await client.request(method, path, headers=headers,
                                    body=body, timeout=timeout)
    finally:
        await client.close()
