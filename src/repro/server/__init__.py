"""Async network front-end: HTTP/JSON serving with admission control.

The serving layer the ROADMAP names as the top open seam: a
stdlib-``asyncio`` HTTP server (:mod:`repro.server.app`) over
:class:`~repro.service.QueryService` and either database facade, with
per-tenant token-bucket quotas and global queue-depth backpressure
(:mod:`repro.server.admission`), per-request deadlines that cancel the
executor mid-stream, and chunked NDJSON streaming of first results —
the paper's Sec. 3.4 online-querying property surfaced as a measured
time-to-first-result SLO.  :mod:`repro.server.client` is the matching
minimal HTTP client used by the tests and the load harness.
"""

from repro.server.admission import (AdmissionController, Rejection,
                                    TokenBucket)
from repro.server.app import QueryServer, ServerConfig
from repro.server.client import ClientResponse, HttpClient, fetch
from repro.server.http import HttpRequest, ProtocolError

__all__ = [
    "AdmissionController",
    "Rejection",
    "TokenBucket",
    "QueryServer",
    "ServerConfig",
    "ClientResponse",
    "HttpClient",
    "fetch",
    "HttpRequest",
    "ProtocolError",
]
