"""Minimal HTTP/1.1 over asyncio streams — just what serving needs.

Hand-rolled on purpose: the stdlib's ``http.server`` is thread-per-
connection and cannot interleave a chunked response with a deadline
timer, and this repo takes no third-party dependencies.  Supported
surface: request line + headers + ``Content-Length`` bodies, query
strings, keep-alive, fixed-length responses and chunked transfer
encoding for streams.  Anything else (request trailers, upgrades,
``Transfer-Encoding`` on requests) is rejected with a clear status.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpRequest", "ProtocolError", "read_request",
           "render_response", "json_response", "ChunkedWriter",
           "REASONS"]

REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_HEADER_COUNT = 100
MAX_LINE_BYTES = 8190


class ProtocolError(Exception):
    """Malformed or unsupported HTTP from the peer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request; header names are lower-cased."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection

    def json_body(self) -> dict:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise ProtocolError(400, "JSON body must be an object")
        return payload


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(400, "header line too long")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(400, "header line too long")
    return line


async def read_request(reader: asyncio.StreamReader,
                       max_body: int = 1 << 20) -> HttpRequest | None:
    """Parse one request; ``None`` on a clean EOF between requests."""
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(400, f"unsupported version {version}")
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError(400, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise ProtocolError(501, "request transfer-encoding "
                                 "is not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "bad content-length")
        if length < 0:
            raise ProtocolError(400, "bad content-length")
        if length > max_body:
            raise ProtocolError(413, f"body exceeds {max_body} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError(400, "truncated request body")
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return HttpRequest(method=method.upper(), path=unquote(split.path),
                       query=query, headers=headers, body=body,
                       version=version)


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: dict[str, str] | None = None,
                    keep_alive: bool = True) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(status: int, payload: object,
                  extra_headers: dict[str, str] | None = None,
                  keep_alive: bool = True) -> bytes:
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return render_response(status, body.encode("utf-8"),
                           extra_headers=extra_headers,
                           keep_alive=keep_alive)


class ChunkedWriter:
    """A chunked-transfer response; one per streamed request.

    ``start`` writes the header block, ``send`` one chunk per call,
    ``finish`` the terminating zero chunk.  The server checks
    :attr:`started` to decide whether an error can still become a
    clean status response or must abort mid-stream.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.started = False
        self.finished = False

    async def start(self, status: int = 200,
                    content_type: str = "application/x-ndjson",
                    extra_headers: dict[str, str] | None = None,
                    keep_alive: bool = True) -> None:
        reason = REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 "Transfer-Encoding: chunked",
                 f"Connection: "
                 f"{'keep-alive' if keep_alive else 'close'}"]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        self._writer.write(head.encode("latin-1"))
        await self._writer.drain()
        self.started = True

    async def send(self, data: bytes) -> None:
        if not data:
            return
        self._writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        await self._writer.drain()

    async def send_json_line(self, payload: object) -> None:
        await self.send((json.dumps(payload, sort_keys=True) + "\n")
                        .encode("utf-8"))

    async def finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
