"""The asyncio HTTP/JSON query server.

One event loop owns connections and deadlines; plan optimization and
execution run on a thread pool, streaming rows back through the loop.
``/query`` is admission-controlled (see :mod:`repro.server.admission`);
the observability routes (``/metrics``, ``/traces``, ``/slo``,
``/planspace``, ``/healthz``) are served from the same socket but are
never shed — you can always observe a saturated server.

Request surface (``GET`` with query-string parameters or ``POST``
with a JSON object; body keys win)::

    xpath       required       the query
    algorithm   DPP            one of the paper's optimizers
    engine      server default execution mode (sharded workers only;
                               the streamed coordinator path always
                               pipelines tuples)
    stream      0              1/true: chunked NDJSON, rows as produced
    limit       0              stop after N rows (0 = all)
    timeout_ms  config default per-request deadline
    tenant      "anonymous"    admission bucket (or ``X-Tenant``)

``X-Trace-Id`` forces a traced execution joined to the caller's trace
id — the stitched tree lands in ``/traces`` under that id.  Deadline
expiry cancels the executor mid-stream: the cancel predicate is
checked before every row, the operators are closed, the 504 (or the
terminal NDJSON line with ``"cancelled": true``) reports how far the
query got, and the error-budget burn shows up in ``/slo``.

Shutdown is one path for every entry point (``repro serve``,
``stats --listen``, tests): stop accepting, finish in-flight requests
within the drain budget, flush the query log, report.  SIGTERM exits
0, SIGINT exits 130, a taken port exits 2 before serving anything.
"""

from __future__ import annotations

import asyncio
import math
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import IO

from repro.errors import (OptimizerError, PatternError, PlanError,
                          QueryCancelled, ReproError, XPathSyntaxError)
from repro.engine.executor import validate_engine
from repro.obs.spans import TraceContext
from repro.server.admission import AdmissionController, Rejection
from repro.server.http import (ChunkedWriter, HttpRequest,
                               ProtocolError, json_response,
                               read_request, render_response)

__all__ = ["ServerConfig", "QueryServer"]

#: request errors that are the client's fault
BAD_REQUEST_ERRORS = (XPathSyntaxError, PatternError, PlanError,
                      OptimizerError)

_TRUTHY = ("1", "true", "yes", "on")


@dataclass
class ServerConfig:
    """Tunables for one :class:`QueryServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port, announce the real one
    workers: int = 4  # query executor threads
    queue_depth: int = 8  # admitted requests beyond the workers
    tenant_rate: float = 50.0  # requests/second/tenant (0 disables)
    tenant_burst: float = 100.0
    deadline_seconds: float = 30.0  # default per-request deadline
    max_deadline_seconds: float = 300.0
    drain_seconds: float = 5.0  # shutdown budget for in-flight work
    keep_alive_seconds: float = 75.0  # idle connection timeout
    max_body_bytes: int = 1 << 20
    algorithm: str = "DPP"

    @property
    def max_inflight(self) -> int:
        return self.workers + self.queue_depth


@dataclass
class _QueryParams:
    xpath: str
    algorithm: str
    engine: "str | None"
    stream: bool
    limit: int
    deadline: float
    tenant: str
    trace_id: str


class QueryServer:
    """Serve a :class:`~repro.api.Database` (or sharded facade) over
    HTTP.

    Three ways to run it: :meth:`run` blocks the calling thread and
    owns signals (the CLI path, both ``repro serve`` and
    ``stats --listen``); :meth:`start` / :meth:`stop` run the loop on
    a daemon thread (tests, the load harness); or await :meth:`serve`
    from an existing loop.
    """

    def __init__(self, database, config: ServerConfig | None = None,
                 out: "IO[str] | None" = None) -> None:
        self.database = database
        self.config = config or ServerConfig()
        self.service = database.service
        self.out = out if out is not None else sys.stdout
        self.admission = AdmissionController(
            self.config.max_inflight,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst)
        self.host = self.config.host
        self.port = self.config.port
        self.exit_code = 0
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._shutdown: asyncio.Event | None = None
        self._connections: "set[asyncio.Task]" = set()
        self._draining = False
        self._started_monotonic = time.monotonic()
        self._requests_inflight = 0
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._bind_error: OSError | None = None
        self._served = 0  # lifetime request count for the drain report
        registry = self.service.registry
        self._http_requests = registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status")
        self._http_rejections = registry.counter(
            "repro_http_rejected_total",
            "Requests shed by admission control, by reason")
        self._http_cancelled = registry.counter(
            "repro_http_cancelled_total",
            "Requests cancelled by their deadline")
        registry.register_collector(self._collect_gauges)

    def _collect_gauges(self) -> None:
        registry = self.service.registry
        snapshot = self.admission.snapshot()
        registry.gauge("repro_http_inflight",
                       "Admitted requests currently in flight").set(
            snapshot["inflight"])
        registry.gauge("repro_http_draining",
                       "1 while the server drains for shutdown").set(
            1 if self._draining else 0)
        registry.gauge("repro_http_tenants",
                       "Tenants with an admission bucket").set(
            snapshot["tenants"])

    def _count_request(self, route: str, status: int) -> None:
        self._served += 1
        self._http_requests.inc(route=route, status=str(status))

    # -- lifecycle (the one shutdown path) ------------------------------

    def run(self, install_signals: bool = True) -> int:
        """Serve until a shutdown signal; returns the exit code.

        Exit codes are shared across every server entry point: **2**
        when the port cannot be bound (reported on stderr before
        anything serves), **130** after SIGINT, **0** after SIGTERM or
        a programmatic :meth:`stop` — the latter two drain first.
        """
        try:
            asyncio.run(self._main(install_signals=install_signals))
        except KeyboardInterrupt:
            # platforms without add_signal_handler (or a second ^C
            # during drain): still report the conventional code
            self.exit_code = 130
        return self.exit_code

    def start(self) -> "tuple[str, int]":
        """Serve on a daemon thread; returns the bound address."""
        self._thread = threading.Thread(
            target=self._run_background, name="repro-server",
            daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._bind_error is not None:
            raise self._bind_error
        return self.host, self.port

    def _run_background(self) -> None:
        try:
            asyncio.run(self._main(install_signals=False))
        finally:
            self._ready.set()

    def stop(self) -> None:
        """Request a graceful drain from any thread and wait for it."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._request_shutdown,
                                          "stop", 0)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=15.0)

    async def _main(self, install_signals: bool) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._shutdown = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-query")
        try:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host,
                self.config.port)
        except OSError as exc:
            print(f"error: cannot listen on "
                  f"{self.config.host}:{self.config.port}: {exc}",
                  file=sys.stderr)
            self.exit_code = 2
            self._bind_error = exc
            self._executor.shutdown(wait=False)
            self._ready.set()
            return
        sockets = self._server.sockets or []
        if sockets:
            self.host, self.port = sockets[0].getsockname()[:2]
        if install_signals:
            for signum, code in ((signal.SIGINT, 130),
                                 (signal.SIGTERM, 0)):
                try:
                    loop.add_signal_handler(
                        signum, self._request_shutdown,
                        signal.Signals(signum).name, code)
                except (NotImplementedError, RuntimeError):
                    pass
        self.out.write(
            f"serving /query, /metrics, /traces, /slo, /planspace "
            f"and /healthz on http://{self.host}:{self.port} "
            f"(Ctrl-C to stop)\n")
        try:
            self.out.flush()
        except (ValueError, OSError):
            pass
        self._ready.set()
        await self._shutdown.wait()
        await self._drain()

    def _request_shutdown(self, cause: str, exit_code: int) -> None:
        if self._draining:
            return
        self._draining = True
        self.exit_code = exit_code
        inflight = self.admission.snapshot()["inflight"]
        self.out.write(f"{cause}: draining ({inflight} in flight, "
                       f"budget {self.config.drain_seconds:.1f}s)\n")
        assert self._shutdown is not None
        self._shutdown.set()

    async def _drain(self) -> None:
        """Stop accepting, finish in-flight work, flush the query log."""
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # connection handlers observe the shutdown event: idle
        # keep-alive connections close immediately, busy ones finish
        # their current request within the drain budget
        pending = [task for task in self._connections
                   if not task.done()]
        if pending:
            await asyncio.wait(pending,
                               timeout=self.config.drain_seconds)
        for task in self._connections:
            if not task.done():
                task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        flushed = ""
        log = getattr(self.database, "query_log", None)
        if log is not None:
            log.flush()
            flushed = ", query log flushed"
        self.out.write(f"drained: {self._served} requests "
                       f"served{flushed}\n")
        try:
            self.out.flush()
        except (ValueError, OSError):
            pass

    # -- connections ----------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            while True:
                request = await self._next_request(reader)
                if request is None:
                    break
                keep = await self._dispatch(request, writer)
                if not keep or self._draining:
                    break
        except ProtocolError as exc:
            try:
                writer.write(json_response(
                    exc.status, {"error": str(exc)},
                    keep_alive=False))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _next_request(self, reader: asyncio.StreamReader
                            ) -> HttpRequest | None:
        """One request, or ``None`` on idle timeout / drain / EOF."""
        assert self._shutdown is not None
        if self._draining:
            return None
        read = asyncio.ensure_future(
            read_request(reader, self.config.max_body_bytes))
        drain = asyncio.ensure_future(self._shutdown.wait())
        done, _ = await asyncio.wait(
            {read, drain}, timeout=self.config.keep_alive_seconds,
            return_when=asyncio.FIRST_COMPLETED)
        if read in done:
            drain.cancel()
            return read.result()
        # idle timeout or drain: abandon the (empty) read
        read.cancel()
        drain.cancel()
        await asyncio.gather(read, drain, return_exceptions=True)
        return None

    async def _dispatch(self, request: HttpRequest,
                        writer: asyncio.StreamWriter) -> bool:
        route = request.path
        keep = request.keep_alive and not self._draining
        if route == "/query":
            if request.method not in ("GET", "POST"):
                return await self._respond(
                    writer, route, 405,
                    {"error": "use GET or POST"}, keep)
            return await self._handle_query(request, writer, keep)
        if request.method != "GET":
            return await self._respond(writer, route, 405,
                                       {"error": "use GET"}, keep)
        body, content_type = self._observability_body(route)
        if body is None:
            return await self._respond(writer, route, 404,
                                       {"error": f"no route {route}"},
                                       keep)
        payload = render_response(200, body, content_type=content_type,
                                  keep_alive=keep)
        writer.write(payload)
        await writer.drain()
        self._count_request(route, 200)
        return keep

    def _observability_body(self, route: str
                            ) -> "tuple[bytes | None, str]":
        import json as _json

        service = self.service
        if route in ("/", "/metrics"):
            return (service.export_metrics("prometheus")
                    .encode("utf-8"), "text/plain; version=0.0.4")
        if route == "/traces":
            return (_json.dumps({"traces": service.traces()}, indent=2,
                                sort_keys=True).encode("utf-8"),
                    "application/json")
        if route == "/slo":
            return (_json.dumps(service.slo.snapshot(), indent=2,
                                sort_keys=True).encode("utf-8"),
                    "application/json")
        if route == "/planspace":
            return (_json.dumps({"planspace": service.planspace()},
                                indent=2,
                                sort_keys=True).encode("utf-8"),
                    "application/json")
        if route == "/healthz":
            admission = self.admission.snapshot()
            return (_json.dumps({
                "status": "draining" if self._draining else "ok",
                "uptime_seconds": (time.monotonic()
                                   - self._started_monotonic),
                "statistics_epoch": self.database.statistics_epoch,
                "queries": service.snapshot()["queries"],
                "inflight": admission["inflight"],
                "max_inflight": admission["max_inflight"],
                "tenants": admission["tenants"],
            }, indent=2, sort_keys=True).encode("utf-8"),
                "application/json")
        return None, ""

    async def _respond(self, writer: asyncio.StreamWriter, route: str,
                       status: int, payload: dict,
                       keep: bool,
                       extra_headers: "dict[str, str] | None" = None
                       ) -> bool:
        writer.write(json_response(status, payload,
                                   extra_headers=extra_headers,
                                   keep_alive=keep))
        await writer.drain()
        self._count_request(route, status)
        return keep

    # -- the query path -------------------------------------------------

    def _parse_query_params(self, request: HttpRequest) -> _QueryParams:
        params: dict[str, object] = dict(request.query)
        params.update(request.json_body())

        def text(name: str, default: str = "") -> str:
            value = params.get(name, default)
            return str(value) if value is not None else default

        xpath = text("xpath") or text("query")
        if not xpath:
            raise ProtocolError(400, "missing required parameter "
                                     "'xpath'")
        engine = text("engine") or None
        if engine is not None:
            validate_engine(engine)  # PlanError -> 400
        try:
            limit = int(params.get("limit", 0) or 0)
        except (TypeError, ValueError):
            raise ProtocolError(400, "limit must be an integer")
        if limit < 0:
            raise ProtocolError(400, "limit must be >= 0")
        deadline_ms = (params.get("timeout_ms")
                       or request.headers.get("x-deadline-ms"))
        deadline = self.config.deadline_seconds
        if deadline_ms is not None:
            try:
                deadline = float(deadline_ms) / 1000.0
            except (TypeError, ValueError):
                raise ProtocolError(400, "timeout_ms must be a number")
            if deadline <= 0:
                raise ProtocolError(400, "timeout_ms must be > 0")
        deadline = min(deadline, self.config.max_deadline_seconds)
        tenant = (text("tenant")
                  or request.headers.get("x-tenant", "")
                  or "anonymous")
        trace_id = request.headers.get("x-trace-id",
                                       text("trace_id")).strip()
        if len(trace_id) > 64:
            raise ProtocolError(400, "trace id too long")
        stream = text("stream").lower() in _TRUTHY
        return _QueryParams(
            xpath=xpath,
            algorithm=text("algorithm") or self.config.algorithm,
            engine=engine, stream=stream, limit=limit,
            deadline=deadline, tenant=tenant, trace_id=trace_id)

    async def _handle_query(self, request: HttpRequest,
                            writer: asyncio.StreamWriter,
                            keep: bool) -> bool:
        params = self._parse_query_params(request)
        rejection = self.admission.admit(params.tenant)
        if rejection is not None:
            return await self._reject(writer, rejection, keep)
        started = time.perf_counter()
        try:
            return await self._execute_query(writer, params, keep,
                                             started)
        finally:
            self.admission.release(time.perf_counter() - started)

    async def _reject(self, writer: asyncio.StreamWriter,
                      rejection: Rejection, keep: bool) -> bool:
        self._http_rejections.inc(reason=rejection.reason)
        # the header carries the RFC's integral seconds (rounded up,
        # never zero); the body carries the exact figure for clients
        # that can pace themselves more finely
        headers = {"Retry-After":
                   str(max(1, math.ceil(rejection.retry_after)))}
        return await self._respond(
            writer, "/query", 429,
            {"error": "rejected", "reason": rejection.reason,
             "tenant": rejection.tenant,
             "retry_after_seconds": round(rejection.retry_after, 6)},
            keep, extra_headers=headers)

    async def _execute_query(self, writer: asyncio.StreamWriter,
                             params: _QueryParams, keep: bool,
                             started: float) -> bool:
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[tuple[str, object]]" = asyncio.Queue()
        cancel = threading.Event()
        trace_context = (TraceContext(trace_id=params.trace_id)
                         if params.trace_id else None)

        def emit(kind: str, payload: object) -> None:
            try:
                loop.call_soon_threadsafe(queue.put_nowait,
                                          (kind, payload))
            except RuntimeError:
                pass  # loop closed mid-drain; nothing left to notify

        def produce() -> None:
            stream = None
            try:
                if cancel.is_set():
                    raise QueryCancelled(
                        "deadline expired before execution started")
                pattern = self.database.compile(params.xpath)
                optimization = self.service.optimize_cached(
                    pattern, params.algorithm)
                stream = self.database.stream_execute(
                    optimization.plan, pattern, engine=params.engine,
                    cancel=cancel.is_set,
                    trace_context=trace_context)
                emit("meta", stream)
                for row in stream:
                    emit("row", [region.start for region in row])
                    if params.limit and stream.produced >= params.limit:
                        stream.close()
                        break
                emit("done", stream)
            except QueryCancelled:
                emit("cancelled", stream)
            except BaseException as exc:
                emit("error", exc)

        assert self._executor is not None
        timer = loop.call_later(params.deadline, cancel.set)
        future = loop.run_in_executor(self._executor, produce)
        chunked = ChunkedWriter(writer) if params.stream else None
        collected: "list[list[int]]" = []
        stream = None
        outcome = ""
        error: BaseException | None = None
        ttfr: "float | None" = None
        truncated = False
        client_gone = False
        try:
            while True:
                try:
                    kind, payload = await asyncio.wait_for(
                        queue.get(), params.deadline + 10.0)
                except asyncio.TimeoutError:
                    # the producer never started (saturated pool) and
                    # the deadline timer has long fired; give up on
                    # this request but let produce() bail on its own
                    outcome = "cancelled"
                    break
                if kind == "meta":
                    stream = payload
                    if chunked is not None and not client_gone:
                        try:
                            await self._start_stream(chunked, stream,
                                                     params, keep)
                        except (ConnectionError, OSError):
                            client_gone = True
                            cancel.set()
                    continue
                if kind == "row":
                    if ttfr is None:
                        ttfr = time.perf_counter() - started
                    if chunked is not None and not client_gone:
                        try:
                            await chunked.send_json_line(
                                {"b": payload})
                        except (ConnectionError, OSError):
                            client_gone = True
                            cancel.set()
                    else:
                        collected.append(payload)
                    continue
                if kind == "done":
                    stream = payload
                    truncated = bool(params.limit
                                     and stream.produced
                                     >= params.limit)
                    outcome = "done"
                elif kind == "cancelled":
                    stream = payload if payload is not None else stream
                    outcome = "cancelled"
                else:
                    error = payload  # kind == "error"
                    outcome = "error"
                break
        finally:
            timer.cancel()
            cancel.set()  # a consumer-side exit also stops the producer
        await asyncio.shield(self._await_producer(future))
        elapsed = time.perf_counter() - started
        keep = keep and not client_gone
        return await self._finish_query(writer, chunked, params, keep,
                                        outcome, error, stream,
                                        collected, elapsed, ttfr,
                                        truncated, client_gone)

    @staticmethod
    async def _await_producer(future: "asyncio.Future[None]") -> None:
        try:
            await future
        except Exception:
            pass  # producer exceptions were shipped through the queue

    async def _start_stream(self, chunked: ChunkedWriter, stream,
                            params: _QueryParams, keep: bool) -> None:
        headers = {}
        if params.trace_id:
            headers["X-Trace-Id"] = params.trace_id
        await chunked.start(200, extra_headers=headers,
                            keep_alive=keep)
        await chunked.send_json_line({
            "schema": list(stream.schema.node_ids),
            "query": params.xpath,
            "algorithm": params.algorithm,
            "trace_id": params.trace_id,
        })

    async def _finish_query(self, writer: asyncio.StreamWriter,
                            chunked: "ChunkedWriter | None",
                            params: _QueryParams, keep: bool,
                            outcome: str,
                            error: "BaseException | None", stream,
                            collected: "list[list[int]]",
                            elapsed: float, ttfr: "float | None",
                            truncated: bool,
                            client_gone: bool) -> bool:
        """Send the terminal response/line and observe the request."""
        cancelled = outcome == "cancelled"
        produced = stream.produced if stream is not None else 0
        trace_id = params.trace_id
        if (stream is not None and getattr(stream, "span", None)
                is not None):
            trace_id = stream.span.trace_id or trace_id
        if cancelled:
            self._http_cancelled.inc()
        if outcome == "error":
            assert error is not None
            status = (400 if isinstance(error, BAD_REQUEST_ERRORS)
                      else 500)
            self.service.observe_served_query(
                elapsed, time_to_first=ttfr, error=True,
                trace_id=trace_id)
            if chunked is not None and chunked.started:
                # the stream is already under way: report in-band,
                # the chunked encoding stays well-formed
                await self._terminal_line(chunked, {
                    "done": True, "error": str(error),
                    "rows": produced, "seconds": round(elapsed, 6)})
                self._count_request("/query", status)
                return keep
            return await self._respond(
                writer, "/query", status,
                {"error": str(error),
                 "kind": type(error).__name__}, keep)
        self.service.observe_served_query(
            elapsed, time_to_first=ttfr, error=cancelled,
            trace_id=trace_id,
            metrics=(stream.metrics
                     if outcome == "done" and stream is not None
                     else None),
            rows=produced, query=params.xpath,
            algorithm=params.algorithm,
            engine=params.engine or "")
        summary = {
            "done": True,
            "cancelled": cancelled,
            "rows": produced,
            "truncated": truncated,
            "seconds": round(elapsed, 6),
            "time_to_first_seconds": (round(ttfr, 6)
                                      if ttfr is not None else None),
            "trace_id": trace_id,
        }
        if cancelled:
            summary["error"] = "deadline exceeded"
        status = 504 if cancelled else 200
        if chunked is not None:
            if client_gone:
                return False
            if not chunked.started:
                # cancelled (or empty-and-cancelled) before the first
                # row: a clean status response is still possible
                return await self._respond(writer, "/query", status,
                                           summary, keep)
            await self._terminal_line(chunked, summary)
            self._count_request("/query", status)
            return keep
        if not cancelled:
            summary["query"] = params.xpath
            summary["algorithm"] = params.algorithm
            summary["schema"] = (list(stream.schema.node_ids)
                                 if stream is not None else [])
            summary["bindings"] = collected
        headers = {"X-Trace-Id": trace_id} if trace_id else None
        return await self._respond(writer, "/query", status, summary,
                                   keep, extra_headers=headers)

    async def _terminal_line(self, chunked: ChunkedWriter,
                             payload: dict) -> None:
        try:
            await chunked.send_json_line(payload)
            await chunked.finish()
        except (ConnectionError, OSError):
            pass
