"""Admission control: per-tenant quotas and global backpressure.

Two gates guard the query path, checked in order:

1. **Per-tenant token bucket** — each tenant refills at
   ``tenant_rate`` requests/second up to a burst of ``tenant_burst``.
   A drained bucket rejects with the exact time until the next token
   exists, so one saturating tenant is throttled with an honest
   ``Retry-After`` while every other tenant keeps its SLOs.
2. **Global queue depth** — at most ``workers + queue_depth``
   requests may be in flight (executing plus waiting for a worker
   thread).  Beyond that the server is saturated and sheds load
   instead of queueing unboundedly; the retry hint is derived from an
   EWMA of recent service times, i.e. "how long until a slot frees".

Both gates are time-based and take an injectable monotonic clock, so
tests can assert the Retry-After arithmetic exactly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TokenBucket", "Rejection", "AdmissionController"]

#: fallback saturation retry hint before any request has completed
DEFAULT_RETRY_SECONDS = 0.5


class TokenBucket:
    """Classic token bucket: *rate* tokens/second, capacity *burst*.

    Not thread-safe on its own — the :class:`AdmissionController`
    serializes access under one lock for all tenants.
    """

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def try_take(self, now: float) -> float:
        """Take one token; returns 0.0 on success, else seconds until
        one token will have accrued."""
        if now > self.updated:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.updated)
                              * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


@dataclass
class Rejection:
    """Why a request was refused, and when retrying could succeed."""

    reason: str  # "tenant_quota" | "saturated"
    retry_after: float
    tenant: str = ""


class AdmissionController:
    """The two-gate admission decision for one server.

    ``admit`` either claims an in-flight slot (returning ``None``) or
    returns a :class:`Rejection`; every successful admit must be paired
    with exactly one ``release`` (the server does so in a ``finally``).
    A non-positive *tenant_rate* disables the per-tenant gate (the
    load harness saturates the global gate on purpose).
    """

    def __init__(self, max_inflight: int, *,
                 tenant_rate: float = 0.0,
                 tenant_burst: float = 0.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.max_inflight = max(1, max_inflight)
        self.tenant_rate = tenant_rate
        self.tenant_burst = max(tenant_burst, 1.0)
        self._clock = clock
        self._mutex = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight = 0
        self._avg_seconds = 0.0
        self._completed = 0

    @property
    def inflight(self) -> int:
        with self._mutex:
            return self._inflight

    def admit(self, tenant: str = "") -> Rejection | None:
        now = self._clock()
        with self._mutex:
            if self.tenant_rate > 0.0:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = TokenBucket(self.tenant_rate,
                                         self.tenant_burst, now)
                    self._buckets[tenant] = bucket
                wait = bucket.try_take(now)
                if wait > 0.0:
                    return Rejection(reason="tenant_quota",
                                     retry_after=wait, tenant=tenant)
            if self._inflight >= self.max_inflight:
                return Rejection(reason="saturated",
                                 retry_after=self._retry_hint(),
                                 tenant=tenant)
            self._inflight += 1
            return None

    def release(self, seconds: float | None = None) -> None:
        """Free the slot; *seconds* (the request's service time) feeds
        the EWMA behind the saturation retry hint."""
        with self._mutex:
            if self._inflight > 0:
                self._inflight -= 1
            if seconds is not None:
                self._completed += 1
                if self._completed == 1:
                    self._avg_seconds = seconds
                else:
                    self._avg_seconds += 0.2 * (seconds
                                                - self._avg_seconds)

    def _retry_hint(self) -> float:
        # a slot frees roughly once per average service time; hint at
        # least a tenth of a second so clients do not busy-retry
        if self._completed == 0:
            return DEFAULT_RETRY_SECONDS
        return max(0.1, self._avg_seconds)

    def snapshot(self) -> dict[str, object]:
        with self._mutex:
            return {
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "tenants": len(self._buckets),
                "completed": self._completed,
                "avg_seconds": self._avg_seconds,
            }
