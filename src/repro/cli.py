"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``query``    — run an XPath query against an XML file or a generated
  data set, with algorithm selection, plan explanation and metrics.
* ``explain``  — show the plans every algorithm picks for a query.
* ``stats``    — storage and data statistics of a document; with
  ``--listen PORT`` keep serving /metrics over HTTP.
* ``serve``    — the async network front-end: HTTP/JSON queries with
  per-tenant admission control, per-request deadlines, and chunked
  streaming of first results, plus the observability routes on the
  same port (``stats --listen`` serves the same server).
* ``generate`` — write one of the synthetic benchmark documents as XML.
* ``bench``    — regenerate a paper table or figure.
* ``log``      — run the paper workload with a persistent JSONL query
  log attached (or ``--read`` an existing log back).
* ``calibrate``— fit cost-model factors from a traced query log.
* ``audit``    — replay a query log through the optimizer and flag
  plan flips and cardinality-estimate drift (exit 3 on flips);
  ``--why`` attaches per-flip forensics (structural plan diff plus
  the cost crossover under current statistics).
* ``whatif``   — re-optimize a query (or every logged query) under
  hypothetical cost factors, scaled statistics, or a forced plan,
  without touching the database.
* ``ingest``   — append documents to a durable database directory in
  WAL-logged transactions; ``--crash-after``/``--torn-tail`` inject
  crashes (exit 17) for recovery drills.
* ``checkpoint`` — flush a durable database's pages and truncate its
  write-ahead log.

Query-serving commands accept ``--db DIR`` in place of
``--xml``/``--dataset`` to run against a durable database directory
(crash-recovered on open).

Examples::

    python -m repro query --xml pers.xml "//manager//employee/name"
    python -m repro query --dataset pers --nodes 3000 --algorithm FP \
        --explain "//manager/department/name"
    python -m repro explain --dataset dblp "//article/author"
    python -m repro explain --dataset pers --analyze --engine block \
        "//manager//employee/name"
    python -m repro explain --dataset pers --trace "//manager//name"
    python -m repro stats --dataset pers --serve 5 --format prometheus
    python -m repro generate mbench --nodes 2000 --output mbench.xml
    python -m repro bench table2
    python -m repro log --dataset mbench --serve 3 \
        --output query-log.jsonl
    python -m repro calibrate --log query-log.jsonl --json calib.json
    python -m repro audit --dataset mbench --log query-log.jsonl
    python -m repro audit --dataset mbench --log query-log.jsonl --why
    python -m repro explain --dataset pers --plan-space --top-k 5 \
        "//manager//employee/name"
    python -m repro whatif --dataset pers --factor f_io=64 \
        --scale employee=8 "//manager//employee/name"
    python -m repro ingest --db ./persdb --dataset pers --batches 4
    python -m repro audit --db ./persdb --log query-log.jsonl
    python -m repro checkpoint --db ./persdb
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Sequence

from repro.api import Database
from repro.bench.experiments import (figure7, figure8, table1, table2,
                                     table3)
from repro.bench.harness import ExperimentSetup
from repro.document.serialize import write_xml
from repro.errors import ReproError
from repro.workloads.queries import dataset_document

ALGORITHMS = ("DP", "DPP", "DPP'", "DPAP-EB", "DPAP-LD", "FP")

BENCH_DRIVERS = {
    "table1": lambda setup: table1(setup),
    "table2": lambda setup: table2(setup),
    "table3": lambda setup: table3(setup),
    "figure7": lambda setup: figure7(setup),
    "figure8": lambda setup: figure8(setup),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Structural join order selection for XML queries "
                    "(ICDE 2003 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_source(sub: argparse.ArgumentParser,
                   required: bool = True,
                   with_db: bool = True) -> None:
        source = sub.add_mutually_exclusive_group(required=required)
        source.add_argument("--xml", metavar="FILE",
                            help="load an XML document from a file")
        source.add_argument("--dataset",
                            choices=("pers", "dblp", "mbench"),
                            help="generate a synthetic data set")
        if with_db:
            source.add_argument("--db", metavar="DIR",
                                help="open a durable database "
                                     "directory (crash-recovered)")
        sub.add_argument("--nodes", type=int, default=2000,
                         help="target size for generated data sets")
        sub.add_argument("--seed", type=int, default=42)

    def add_service_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--slow-query-seconds", type=float,
                         default=None, metavar="SECONDS",
                         help="slow-query threshold for the service "
                              "(default 0.25 s)")
        sub.add_argument("--slow-log-capacity", type=int, default=None,
                         metavar="N",
                         help="bound on the retained slow-query log "
                              "(default 32; 0 disables retention)")

    query = commands.add_parser("query", help="run an XPath query")
    add_source(query)
    query.add_argument("xpath")
    query.add_argument("--algorithm", choices=ALGORITHMS, default="DPP")
    query.add_argument("--engine", choices=("block", "tuple"),
                       default="block",
                       help="execution mode: columnar block-at-a-time "
                            "(default) or tuple-at-a-time iterators")
    query.add_argument("--holistic", action="store_true",
                       help="evaluate with one TwigStack instead of "
                            "binary joins")
    query.add_argument("--explain", action="store_true",
                       help="print the chosen plan")
    query.add_argument("--limit", type=int, default=10,
                       help="result rows to print (0 = none)")
    query.add_argument("--repeat", type=int, default=1,
                       help="serve the query N times through the "
                            "plan-caching service")
    query.add_argument("--workers", type=int, default=1,
                       help="thread-pool width for --repeat batches")
    query.add_argument("--shards", type=int, default=0, metavar="N",
                       help="partition the corpus across N process-"
                            "based shards and scatter-gather the "
                            "query (0 = single node)")
    query.add_argument("--dump-bindings", metavar="FILE", default=None,
                       help="write every result binding as one "
                            "canonical line (sorted, diff-able "
                            "across shard counts and engines)")
    add_service_flags(query)

    explain = commands.add_parser(
        "explain", help="compare the plans all algorithms pick, or "
                        "EXPLAIN ANALYZE one of them")
    add_source(explain)
    explain.add_argument("xpath")
    explain.add_argument("--analyze", action="store_true",
                         help="execute the chosen plan under tracing "
                              "and annotate it with estimated vs. "
                              "actual rows/cost and per-operator "
                              "Q-error")
    explain.add_argument("--algorithm", choices=ALGORITHMS,
                         default="DPP",
                         help="optimizer for --analyze/--trace/--json "
                              "(without those flags every algorithm "
                              "is compared)")
    explain.add_argument("--engine", choices=("block", "tuple"),
                         default="block",
                         help="execution mode for --analyze")
    explain.add_argument("--trace", action="store_true",
                         help="print the optimizer's search trace "
                              "(DPP-family algorithms only)")
    explain.add_argument("--json", metavar="FILE", default=None,
                         help="write the report as JSON, including "
                              "the span tree under --analyze "
                              "('-' for stdout)")
    explain.add_argument("--shards", type=int, default=0, metavar="N",
                         help="with --analyze: execute across N "
                              "process-based shards and report "
                              "per-shard actuals plus statistics "
                              "provenance (0 = single node)")
    explain.add_argument("--plan-space", action="store_true",
                         help="record the optimizer's search space "
                              "and report top-k alternative plans, "
                              "pruning effectiveness, and why the "
                              "winner won")
    explain.add_argument("--top-k", type=int, default=3, metavar="K",
                         help="alternative plans to rank with "
                              "--plan-space (default 3)")

    stats = commands.add_parser(
        "stats", help="document statistics and service metrics")
    add_source(stats)
    stats.add_argument("--format", choices=("table", "json",
                                            "prometheus"),
                       default="table",
                       help="table (default), metrics-registry JSON, "
                            "or the Prometheus text format")
    stats.add_argument("--serve", type=int, default=0, metavar="N",
                       help="first serve the data set's paper workload "
                            "N times through the query service, so "
                            "the metrics are non-trivial")
    stats.add_argument("--listen", type=int, default=0, metavar="PORT",
                       help="after --serve, keep serving /metrics "
                            "(Prometheus text), /traces (retained "
                            "trace JSON), /slo (objective compliance "
                            "JSON), /planspace (sampled plan-space "
                            "JSON) and /healthz (liveness JSON) over "
                            "HTTP on 127.0.0.1:PORT until Ctrl-C "
                            "(exit 2 if the port is taken)")
    stats.add_argument("--shards", type=int, default=0, metavar="N",
                       help="serve against the corpus partitioned "
                            "across N process-based shards; traced "
                            "queries record stitched cross-process "
                            "traces (0 = single node)")
    stats.add_argument("--trace-sample", type=int, default=0,
                       metavar="K",
                       help="trace every K-th served query into the "
                            "/traces ring (default 0 = never)")
    stats.add_argument("--planspace-sample", type=int, default=0,
                       metavar="K",
                       help="record the plan space of every K-th "
                            "plan-cache miss into the /planspace "
                            "ring (default 0 = never)")
    add_service_flags(stats)

    serve = commands.add_parser(
        "serve", help="serve queries over HTTP/JSON with admission "
                      "control, deadlines and streamed first results")
    add_source(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8400,
                       help="port to listen on (default 8400; 0 picks "
                            "a free port; exit 2 if taken)")
    serve.add_argument("--workers", type=int, default=4,
                       help="query executor threads (default 4)")
    serve.add_argument("--queue-depth", type=int, default=8,
                       metavar="N",
                       help="admitted requests beyond the workers "
                            "before 429 saturation (default 8)")
    serve.add_argument("--tenant-rate", type=float, default=50.0,
                       metavar="QPS",
                       help="per-tenant token-bucket refill rate "
                            "(default 50/s; 0 disables quotas)")
    serve.add_argument("--tenant-burst", type=float, default=100.0,
                       metavar="N",
                       help="per-tenant burst capacity (default 100)")
    serve.add_argument("--timeout-ms", type=float, default=30000.0,
                       metavar="MS",
                       help="default per-request deadline "
                            "(default 30000 ms)")
    serve.add_argument("--drain-seconds", type=float, default=5.0,
                       metavar="S",
                       help="shutdown budget for in-flight requests "
                            "(default 5 s)")
    serve.add_argument("--algorithm", choices=ALGORITHMS,
                       default="DPP",
                       help="default optimizer for requests that "
                            "name none")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="serve the corpus partitioned across N "
                            "process-based shards (0 = single node)")
    serve.add_argument("--query-log", metavar="FILE", default=None,
                       help="attach a persistent JSONL query log "
                            "(flushed on drain)")
    serve.add_argument("--trace-sample", type=int, default=0,
                       metavar="K",
                       help="trace every K-th served query into "
                            "/traces (default 0 = only X-Trace-Id "
                            "requests)")
    serve.add_argument("--planspace-sample", type=int, default=0,
                       metavar="K",
                       help="record the plan space of every K-th "
                            "plan-cache miss into /planspace")
    add_service_flags(serve)

    generate = commands.add_parser(
        "generate", help="write a synthetic data set as XML")
    generate.add_argument("dataset", choices=("pers", "dblp", "mbench"))
    generate.add_argument("--nodes", type=int, default=2000)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", metavar="FILE", default="-",
                          help="output path ('-' for stdout)")

    bench = commands.add_parser(
        "bench", help="regenerate a paper table or figure, run the "
                      "engine speed benchmark ('engines'), or the "
                      "live ingest plan-crossover bench ('ingest')")
    bench.add_argument("artifact",
                       choices=sorted(BENCH_DRIVERS) + ["engines",
                                                        "ingest",
                                                        "serve"])
    bench.add_argument("--pers-nodes", type=int, default=2000)
    bench.add_argument("--seed", type=int, default=42,
                       help="data-set generation seed (default 42)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed runs per engine ('engines' only)")
    bench.add_argument("--json", metavar="FILE", default=None,
                       help="also write the report as JSON "
                            "('engines' only; e.g. BENCH_PR7.json)")
    bench.add_argument("--shards", action="store_true",
                       help="with 'engines': measure the sharded "
                            "scatter-gather scaling curve (shard "
                            "counts 1/2/4) instead of the engine "
                            "speed comparison; every point carries a "
                            "stitched-trace per-shard span breakdown; "
                            "JSON goes to e.g. BENCH_PR8.json")
    bench.add_argument("--duration", type=float, default=1.5,
                       metavar="S",
                       help="seconds per load point ('serve' only; "
                            "default 1.5)")
    bench.add_argument("--rates", default=None, metavar="R1,R2,..",
                       help="offered Poisson arrival rates in qps for "
                            "the 'serve' saturation sweep (default "
                            "8,16,32,64)")
    bench.add_argument("--tenants", type=int, default=4,
                       help="tenants driving load ('serve' only; "
                            "default 4)")
    bench.add_argument("--target", default=None, metavar="HOST:PORT",
                       help="'serve' only: drive an already-running "
                            "server instead of starting one (single "
                            "load point, rate from --rate)")
    bench.add_argument("--rate", type=float, default=20.0,
                       help="offered rate for --target mode "
                            "(default 20 qps)")

    log_cmd = commands.add_parser(
        "log", help="run the paper workload with a persistent query "
                    "log attached, or summarize an existing log")
    add_source(log_cmd, required=False)
    add_service_flags(log_cmd)
    log_cmd.add_argument("--read", metavar="FILE", default=None,
                         help="summarize an existing query log "
                              "(including rotated segments) instead "
                              "of running a workload")
    log_cmd.add_argument("--serve", type=int, default=3, metavar="N",
                         help="serve the data set's paper workload N "
                              "times (default 3)")
    log_cmd.add_argument("--algorithm", choices=ALGORITHMS,
                         default="DPP")
    log_cmd.add_argument("--output", metavar="FILE",
                         default="query-log.jsonl",
                         help="query-log path (default "
                              "query-log.jsonl)")
    log_cmd.add_argument("--trace-sample", type=int, default=1,
                         metavar="K",
                         help="trace every K-th execution for "
                              "per-operator detail (default 1 = all; "
                              "0 disables tracing)")
    log_cmd.add_argument("--max-bytes", type=int, default=4 << 20,
                         help="rotate the log after this many bytes")
    log_cmd.add_argument("--backups", type=int, default=3,
                         help="rotated segments to keep")

    calibrate = commands.add_parser(
        "calibrate", help="fit cost-model factors from traced query "
                          "logs (non-negative least squares)")
    add_source(calibrate, required=False)
    add_service_flags(calibrate)
    calibrate.add_argument("--log", metavar="FILE", default=None,
                           help="calibrate from a previously written "
                                "query log instead of serving a "
                                "fresh workload")
    calibrate.add_argument("--serve", type=int, default=3,
                           metavar="N",
                           help="without --log: serve the paper "
                                "workload N times, fully traced")
    calibrate.add_argument("--algorithm", choices=ALGORITHMS,
                           default="DPP")
    calibrate.add_argument("--holdout-every", type=int, default=5,
                           metavar="K",
                           help="hold out every K-th sample for "
                                "scoring (default 5)")
    calibrate.add_argument("--json", metavar="FILE", default=None,
                           help="also write the calibration result "
                                "as JSON ('-' for stdout)")

    audit = commands.add_parser(
        "audit", help="replay a query log through the optimizer under "
                      "current statistics and flag plan flips "
                      "(exit 3) and Q-error drift")
    add_source(audit)
    audit.add_argument("--log", metavar="FILE", required=True,
                       help="query log to replay")
    audit.add_argument("--algorithm", choices=ALGORITHMS, default=None,
                       help="replay with this algorithm instead of "
                            "each record's own")
    audit.add_argument("--json", metavar="FILE", default=None,
                       help="also write the audit report as JSON "
                            "('-' for stdout)")
    audit.add_argument("--why", action="store_true",
                       help="attach forensics to every flip: the "
                            "structural plan diff and the cost "
                            "crossover of the logged plan re-priced "
                            "under current statistics")
    audit.add_argument("--factor", action="append", default=[],
                       metavar="NAME=VALUE",
                       help="replay under these cost-factor "
                            "overrides (deliberate perturbation, "
                            "e.g. for flip drills); repeatable")

    whatif = commands.add_parser(
        "whatif", help="re-optimize a query under hypothetical cost "
                       "factors, scaled statistics, or a forced plan "
                       "(nothing on the database is mutated)")
    add_source(whatif)
    whatif.add_argument("xpath", nargs="?", default=None,
                        help="ad-hoc query (omit with --log to replay "
                             "every distinct logged query)")
    whatif.add_argument("--log", metavar="FILE", default=None,
                        help="replay every distinct query of this "
                             "query log instead of one XPath")
    whatif.add_argument("--algorithm", choices=ALGORITHMS,
                        default="DPP")
    whatif.add_argument("--factor", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="override one cost factor (f_index, "
                             "f_sort, f_io, f_stack); repeatable")
    whatif.add_argument("--scale", action="append", default=[],
                        metavar="TAG=K",
                        help="scale one tag's cardinality statistics "
                             "by K; repeatable")
    whatif.add_argument("--exact", action="store_true",
                        help="estimate with exact cardinalities "
                             "instead of histograms")
    whatif.add_argument("--force", metavar="DIGEST", default=None,
                        help="also price this canonical plan digest "
                             "as-if chosen (single query only)")
    whatif.add_argument("--json", metavar="FILE", default=None,
                        help="also write the result(s) as JSON "
                             "('-' for stdout)")

    trace = commands.add_parser(
        "trace", help="watch DPP optimize (Example 3.6 narrative)")
    add_source(trace)
    trace.add_argument("xpath")
    trace.add_argument("--dot", action="store_true",
                       help="emit the search graph as Graphviz dot")
    trace.add_argument("--limit", type=int, default=60,
                       help="events to print (narrative mode)")

    ingest = commands.add_parser(
        "ingest", help="append documents to a durable database "
                       "directory in WAL-logged transactions (creates "
                       "the directory on first use)")
    ingest.add_argument("--db", metavar="DIR", required=True,
                        help="database directory (pages.db + wal.log)")
    add_source(ingest, with_db=False)
    add_service_flags(ingest)
    ingest.add_argument("--batches", type=int, default=1, metavar="N",
                        help="append N copies of the source document, "
                             "one transaction each (default 1; 0 = "
                             "no appends, for pure crash drills)")
    ingest.add_argument("--crash-after", type=int, default=0,
                        metavar="K",
                        help="simulate kill -9: exit 17 without "
                             "cleanup right after the K-th commit")
    ingest.add_argument("--torn-tail", action="store_true",
                        help="after the last batch, commit once more, "
                             "tear the final WAL record, and exit 17 "
                             "(that transaction must vanish on reopen)")
    ingest.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="K",
                        help="checkpoint after every K commits "
                             "(default 0 = never)")

    checkpoint = commands.add_parser(
        "checkpoint", help="flush a durable database's pages and "
                           "truncate its write-ahead log")
    checkpoint.add_argument("--db", metavar="DIR", required=True,
                            help="database directory to checkpoint")
    return parser


def _service_options(arguments: argparse.Namespace) -> dict:
    """Query-service options from the optional CLI service flags."""
    options: dict = {}
    slow_seconds = getattr(arguments, "slow_query_seconds", None)
    if slow_seconds is not None:
        options["slow_query_seconds"] = slow_seconds
    slow_capacity = getattr(arguments, "slow_log_capacity", None)
    if slow_capacity is not None:
        if slow_capacity < 0:
            raise ReproError("--slow-log-capacity must be >= 0")
        options["slow_log_capacity"] = slow_capacity
    return options


def _source_document(arguments: argparse.Namespace):
    """Build the document named by --xml/--dataset (for ingestion)."""
    if arguments.xml:
        from repro.document.parser import parse_xml

        with open(arguments.xml, encoding="utf-8") as handle:
            return parse_xml(handle.read(), name=arguments.xml)
    kwargs = {"seed": arguments.seed}
    if arguments.dataset == "dblp":
        kwargs["entries"] = max(arguments.nodes // 9, 1)
    else:
        kwargs["target_nodes"] = arguments.nodes
    return dataset_document(arguments.dataset, **kwargs)


def _open_database(arguments: argparse.Namespace) -> Database:
    options = _service_options(arguments)
    if getattr(arguments, "db", None):
        from repro.txn.db import open_database

        return open_database(arguments.db, service_options=options)
    if arguments.xml:
        with open(arguments.xml, encoding="utf-8") as handle:
            return Database.from_xml(handle.read(), name=arguments.xml,
                                     service_options=options)
    if not arguments.dataset:
        raise ReproError(
            "a data source is required: pass --xml FILE, "
            "--dataset NAME, or --db DIR")
    return Database.from_document(_source_document(arguments),
                                  service_options=options)


def _write_service_stats(database: Database, out: IO[str]) -> None:
    snapshot = database.stats()
    latency = snapshot["latency"]
    cache = snapshot["plan_cache"]
    out.write(f"service: {snapshot['queries']} queries, "
              f"p50 {latency['p50_seconds'] * 1e3:.2f} ms, "
              f"p95 {latency['p95_seconds'] * 1e3:.2f} ms\n")
    out.write(f"plan cache: hit rate {cache['hit_rate']:.2%} "
              f"({cache['hits']} hits / {cache['misses']} misses, "
              f"{cache['size']}/{cache['capacity']} entries)\n")


def _shard_corpus_document(arguments: argparse.Namespace):
    """The corpus for ``--shards N`` (a document, not a database —
    the shard fleet persists its own per-shard page files)."""
    if getattr(arguments, "db", None):
        from repro.txn.db import open_database

        return open_database(arguments.db).document
    if not (arguments.xml or arguments.dataset):
        raise ReproError(
            "a data source is required: pass --xml FILE, "
            "--dataset NAME, or --db DIR")
    return _source_document(arguments)


def _dump_bindings(execution, target: str, out: IO[str]) -> None:
    """Write the canonical binding set, one sorted line per distinct
    binding — byte-identical across engines and shard counts, so CI
    can diff the files directly."""
    lines = sorted(",".join(str(start) for start in key)
                   for key in execution.canonical())
    with open(target, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    out.write(f"wrote {len(lines)} distinct bindings to {target}\n")


def _command_query(arguments: argparse.Namespace, out: IO[str]) -> int:
    if arguments.repeat < 1:
        raise ReproError("--repeat must be at least 1")
    if arguments.shards < 0:
        raise ReproError("--shards must be >= 0")
    if arguments.shards:
        if arguments.holistic:
            raise ReproError("--holistic evaluates single-node only; "
                             "drop --shards")
        from repro.shard.sharded import ShardedDatabase

        with ShardedDatabase(
                _shard_corpus_document(arguments),
                shards=arguments.shards,
                engine=arguments.engine,
                service_options=_service_options(arguments),
        ) as database:
            return _run_query(database, arguments, out,
                              suffix=f", {arguments.shards} shards")
    return _run_query(_open_database(arguments), arguments, out)


def _run_query(database, arguments: argparse.Namespace, out: IO[str],
               suffix: str = "") -> int:
    pattern = database.compile(arguments.xpath)
    if arguments.holistic:
        execution = database.holistic_query(pattern)
        out.write(f"{len(execution)} matches (holistic twig join)\n")
    elif arguments.repeat > 1 or arguments.workers > 1:
        results = database.query_many(
            [pattern] * arguments.repeat,
            algorithm=arguments.algorithm,
            workers=arguments.workers,
            engine=arguments.engine)
        result = results[0]
        execution = result.execution
        out.write(f"{len(execution)} matches "
                  f"({arguments.algorithm} x{arguments.repeat}, "
                  f"{arguments.workers} workers{suffix})\n")
        if arguments.explain:
            out.write(result.explain() + "\n")
        _write_service_stats(database, out)
    else:
        result = database.query(pattern, algorithm=arguments.algorithm,
                                engine=arguments.engine)
        execution = result.execution
        report = result.optimization.report
        out.write(f"{len(execution)} matches "
                  f"({arguments.algorithm}: "
                  f"{report.optimization_seconds * 1e3:.2f} ms, "
                  f"{report.alternatives_considered} plans{suffix})\n")
        if arguments.explain:
            out.write(result.explain() + "\n")
    out.write(f"engine: {execution.metrics.summary()}\n")
    if arguments.dump_bindings:
        _dump_bindings(execution, arguments.dump_bindings, out)
    if arguments.limit:
        document = database.document
        for binding in execution.bindings()[:arguments.limit]:
            parts = []
            for node_id in sorted(binding):
                node = document.node(binding[node_id].start)
                text = f"={node.text!r}" if node.text else ""
                parts.append(f"${node_id}<{node.tag}>{text}")
            out.write("  " + " ".join(parts) + "\n")
    return 0


def _command_explain(arguments: argparse.Namespace, out: IO[str]) -> int:
    if arguments.shards < 0:
        raise ReproError("--shards must be >= 0")
    if arguments.top_k < 0:
        raise ReproError("--top-k must be >= 0")
    if arguments.shards:
        if arguments.trace:
            raise ReproError("--trace inspects the single-node "
                             "optimizer; drop --shards")
        from repro.shard.sharded import ShardedDatabase

        with ShardedDatabase(_shard_corpus_document(arguments),
                             shards=arguments.shards,
                             engine=arguments.engine) as database:
            report = database.explain(arguments.xpath,
                                      algorithm=arguments.algorithm,
                                      analyze=arguments.analyze,
                                      engine=arguments.engine,
                                      plan_space=arguments.plan_space,
                                      top_k=arguments.top_k)
            out.write(report.render() + "\n")
            if arguments.json:
                payload = json.dumps(report.to_dict(), indent=2,
                                     sort_keys=True) + "\n"
                if arguments.json == "-":
                    out.write(payload)
                else:
                    with open(arguments.json, "w",
                              encoding="utf-8") as handle:
                        handle.write(payload)
                    out.write(f"wrote {arguments.json}\n")
        return 0
    database = _open_database(arguments)
    pattern = database.compile(arguments.xpath)
    if arguments.trace:
        from repro.core.trace import SearchTrace

        recorder = SearchTrace()
        try:
            result = database.optimize(pattern,
                                       algorithm=arguments.algorithm,
                                       trace=recorder)
        except TypeError:
            raise ReproError(
                f"--trace needs a DPP-family algorithm "
                f"(DPP, DPP', DPAP-EB, DPAP-LD); "
                f"{arguments.algorithm} does not record a search trace")
        out.write(f"=== {arguments.algorithm} search trace\n")
        out.write(recorder.narrative(limit=60) + "\n\n")
        out.write(f"chosen plan (estimated "
                  f"{result.estimated_cost:,.0f}):\n")
        out.write(result.explain() + "\n")
        if not (arguments.analyze or arguments.json
                or arguments.plan_space):
            return 0
    if arguments.analyze or arguments.json or arguments.plan_space:
        report = database.explain(arguments.xpath,
                                  algorithm=arguments.algorithm,
                                  analyze=arguments.analyze,
                                  engine=arguments.engine,
                                  plan_space=arguments.plan_space,
                                  top_k=arguments.top_k)
        out.write(report.render() + "\n")
        if arguments.json:
            payload = json.dumps(report.to_dict(), indent=2,
                                 sort_keys=True) + "\n"
            if arguments.json == "-":
                out.write(payload)
            else:
                with open(arguments.json, "w",
                          encoding="utf-8") as handle:
                    handle.write(payload)
                out.write(f"wrote {arguments.json}\n")
        return 0
    out.write("Pattern:\n" + pattern.describe() + "\n")
    for algorithm in ALGORITHMS:
        result = database.optimize(pattern, algorithm=algorithm)
        out.write(f"\n=== {algorithm} "
                  f"(estimated {result.estimated_cost:,.0f}, "
                  f"{result.report.alternatives_considered} plans, "
                  f"{result.report.optimization_seconds * 1e3:.2f} ms)\n")
        out.write(result.explain() + "\n")
    return 0


def _serve_paper_workload(database: Database, dataset: str | None,
                          repeats: int,
                          algorithm: str = "DPP") -> int:
    """Run the data set's Table-1 queries *repeats* times through the
    plan-caching service; returns how many queries were served.

    Queries are served as XPath strings (not the hand-built patterns)
    so that what lands in the query log round-trips exactly: the plan
    auditor recompiles the logged string and must see the same
    pattern — including the implicit result-order constraint XPath
    compilation adds — or replays would diff semantically different
    patterns and report phantom flips.
    """
    from repro.workloads.queries import PAPER_QUERIES
    from repro.xpath.render import pattern_to_xpath

    queries = [pattern_to_xpath(query.pattern)
               for query in PAPER_QUERIES.values()
               if dataset is None or query.dataset == dataset]
    if not queries:
        return 0
    database.query_many(queries * repeats, algorithm=algorithm)
    return len(queries) * repeats


def _run_metrics_server(database: Database, port: int,
                        out: IO[str]) -> int:
    """``stats --listen``: the full query server on 127.0.0.1.

    An alias for ``repro serve`` with default admission settings —
    the same :class:`~repro.server.QueryServer`, so ``/query``,
    ``/metrics``, ``/traces``, ``/slo``, ``/planspace`` and
    ``/healthz`` share one port, one signal handler and one drain
    path.  A taken port is an operator error, not a crash: report it
    and exit 2 so scripts can tell it from query failures (exit 1);
    SIGTERM drains and exits 0, Ctrl-C drains and exits 130.
    """
    from repro.server import QueryServer, ServerConfig

    server = QueryServer(database,
                         ServerConfig(host="127.0.0.1", port=port),
                         out=out)
    return server.run()


def _command_stats(arguments: argparse.Namespace, out: IO[str]) -> int:
    if arguments.shards < 0:
        raise ReproError("--shards must be >= 0")
    if arguments.trace_sample < 0:
        raise ReproError("--trace-sample must be >= 0")
    if arguments.planspace_sample < 0:
        raise ReproError("--planspace-sample must be >= 0")
    options = _service_options(arguments)
    if arguments.trace_sample:
        options["trace_sample"] = arguments.trace_sample
    if arguments.planspace_sample:
        options["planspace_sample"] = arguments.planspace_sample
    if arguments.shards:
        from repro.shard.sharded import ShardedDatabase

        with ShardedDatabase(_shard_corpus_document(arguments),
                             shards=arguments.shards,
                             service_options=options) as database:
            return _run_stats(database, arguments, out)
    database = _open_database(arguments)
    database.service_options.update(options)
    return _run_stats(database, arguments, out)


def _run_stats(database, arguments: argparse.Namespace,
               out: IO[str]) -> int:
    if arguments.serve:
        _serve_paper_workload(database, arguments.dataset,
                              arguments.serve)
    if arguments.listen:
        return _run_metrics_server(database, arguments.listen, out)
    if arguments.format != "table":
        out.write(database.service.export_metrics(arguments.format))
        return 0
    statistics = getattr(database, "statistics", None)
    if statistics is not None:
        for key, value in statistics().items():
            out.write(f"{key:16s} {value}\n")
    if arguments.serve:
        _write_service_stats(database, out)
    histogram = database.document.tag_histogram()
    out.write("tags:\n")
    for tag in sorted(histogram, key=histogram.get, reverse=True):
        out.write(f"  {tag:16s} {histogram[tag]}\n")
    return 0


def _command_serve(arguments: argparse.Namespace, out: IO[str]) -> int:
    from repro.server import ServerConfig

    if arguments.shards < 0:
        raise ReproError("--shards must be >= 0")
    if arguments.workers < 1:
        raise ReproError("--workers must be at least 1")
    if arguments.queue_depth < 0:
        raise ReproError("--queue-depth must be >= 0")
    if arguments.timeout_ms <= 0:
        raise ReproError("--timeout-ms must be > 0")
    if arguments.trace_sample < 0:
        raise ReproError("--trace-sample must be >= 0")
    if arguments.planspace_sample < 0:
        raise ReproError("--planspace-sample must be >= 0")
    options = _service_options(arguments)
    if arguments.trace_sample:
        options["trace_sample"] = arguments.trace_sample
    if arguments.planspace_sample:
        options["planspace_sample"] = arguments.planspace_sample
    config = ServerConfig(
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        queue_depth=arguments.queue_depth,
        tenant_rate=arguments.tenant_rate,
        tenant_burst=arguments.tenant_burst,
        deadline_seconds=arguments.timeout_ms / 1000.0,
        drain_seconds=arguments.drain_seconds,
        algorithm=arguments.algorithm,
    )
    if arguments.shards:
        from repro.shard.sharded import ShardedDatabase

        with ShardedDatabase(_shard_corpus_document(arguments),
                             shards=arguments.shards,
                             service_options=options) as database:
            return _run_server(database, config, arguments, out)
    database = _open_database(arguments)
    database.service_options.update(options)
    return _run_server(database, config, arguments, out)


def _run_server(database, config, arguments: argparse.Namespace,
                out: IO[str]) -> int:
    from repro.server import QueryServer

    if getattr(arguments, "query_log", None):
        from repro.obs.querylog import QueryLog

        if not hasattr(database, "attach_query_log"):
            raise ReproError("--query-log is single-node only; "
                             "drop --shards")
        with QueryLog(arguments.query_log) as log:
            database.attach_query_log(log)
            try:
                return QueryServer(database, config, out=out).run()
            finally:
                database.attach_query_log(None)
    return QueryServer(database, config, out=out).run()


def _command_generate(arguments: argparse.Namespace,
                      out: IO[str]) -> int:
    kwargs = {"seed": arguments.seed}
    if arguments.dataset == "dblp":
        kwargs["entries"] = max(arguments.nodes // 9, 1)
    else:
        kwargs["target_nodes"] = arguments.nodes
    document = dataset_document(arguments.dataset, **kwargs)
    if arguments.output == "-":
        write_xml(document, out)
    else:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            write_xml(document, handle)
        out.write(f"wrote {len(document)} nodes to "
                  f"{arguments.output}\n")
    return 0


def _command_bench(arguments: argparse.Namespace, out: IO[str]) -> int:
    setup = ExperimentSetup(pers_nodes=arguments.pers_nodes,
                            seed=arguments.seed)
    if arguments.artifact == "serve":
        from repro.bench.serve import (render_serving_report,
                                       serving_report,
                                       target_report)

        rates = [float(rate) for rate in
                 (arguments.rates or "8,16,32,64").split(",")]
        if arguments.target:
            host, _, port = arguments.target.rpartition(":")
            if not host or not port.isdigit():
                raise ReproError("--target must be HOST:PORT")
            report = target_report(host, int(port),
                                   rate=arguments.rate,
                                   duration=arguments.duration,
                                   tenants=arguments.tenants,
                                   seed=arguments.seed)
        else:
            report = serving_report(setup, rates=rates,
                                    duration=arguments.duration,
                                    tenants=arguments.tenants)
        out.write(render_serving_report(report) + "\n")
        if arguments.json:
            _write_json_payload(report, arguments.json, out)
        return 0
    if arguments.artifact == "engines" and arguments.shards:
        from repro.bench.shard import (render_shard_report,
                                       shard_scaling_report,
                                       write_shard_report)

        report = shard_scaling_report(setup, repeats=arguments.repeats)
        out.write(render_shard_report(report) + "\n")
        if arguments.json:
            write_shard_report(report, arguments.json)
            out.write(f"wrote {arguments.json}\n")
        return 0
    if arguments.artifact == "engines":
        from repro.bench.speed import (engine_speed_report, render_report,
                                       write_report)

        report = engine_speed_report(setup, repeats=arguments.repeats)
        out.write(render_report(report) + "\n")
        if arguments.json:
            write_report(report, arguments.json)
            out.write(f"wrote {arguments.json}\n")
        return 0
    if arguments.artifact == "ingest":
        from repro.bench.ingest import ingest_crossover_report

        output = ingest_crossover_report(setup)
        out.write(output.text + "\n")
        if arguments.json:
            _write_json_payload(output.rows, arguments.json, out)
        return 0
    output = BENCH_DRIVERS[arguments.artifact](setup)
    out.write(output.text + "\n")
    return 0


def _write_json_payload(payload: object, target: str,
                        out: IO[str]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if target == "-":
        out.write(text)
    else:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
        out.write(f"wrote {target}\n")


def _command_log(arguments: argparse.Namespace, out: IO[str]) -> int:
    from repro.obs.querylog import QueryLog, read_query_log

    if arguments.read:
        scan = read_query_log(arguments.read)
        traced = sum(1 for record in scan.records
                     if record.get("operators"))
        algorithms: dict[str, int] = {}
        for record in scan.records:
            name = str(record.get("algorithm") or "?")
            algorithms[name] = algorithms.get(name, 0) + 1
        out.write(f"{len(scan.records)} records from "
                  f"{len(scan.files)} file(s), {scan.skipped} "
                  f"malformed line(s) skipped, {traced} traced\n")
        for name in sorted(algorithms):
            out.write(f"  {name:10s} {algorithms[name]}\n")
        for record in scan.records[-5:]:
            out.write(f"  {record.get('query', '?')} -> "
                      f"{record.get('rows', '?')} rows in "
                      f"{record.get('wall_seconds', 0.0):.4f}s\n")
        return 0
    database = _open_database(arguments)
    if arguments.trace_sample < 0:
        raise ReproError("--trace-sample must be >= 0")
    with QueryLog(arguments.output, max_bytes=arguments.max_bytes,
                  backups=arguments.backups,
                  trace_sample=arguments.trace_sample) as log:
        database.attach_query_log(log)
        served = _serve_paper_workload(database, arguments.dataset,
                                       arguments.serve,
                                       algorithm=arguments.algorithm)
        log.flush()
        out.write(f"served {served} queries "
                  f"({arguments.algorithm}); logged {log.written} "
                  f"records ({log.dropped} dropped) to "
                  f"{arguments.output}\n")
    database.attach_query_log(None)
    return 0


def _command_calibrate(arguments: argparse.Namespace,
                       out: IO[str]) -> int:
    from repro.obs.calibrate import calibrate_records
    from repro.obs.querylog import QueryLog, read_query_log

    if arguments.log:
        scan = read_query_log(arguments.log)
        records = scan.records
        if scan.skipped:
            out.write(f"note: skipped {scan.skipped} malformed "
                      f"line(s)\n")
    else:
        if not (arguments.xml or arguments.dataset):
            raise ReproError(
                "calibrate needs --log FILE, or a data source "
                "(--xml/--dataset) to trace a fresh workload")
        database = _open_database(arguments)
        with QueryLog(None, trace_sample=1) as log:
            database.attach_query_log(log)
            _serve_paper_workload(database, arguments.dataset,
                                  arguments.serve,
                                  algorithm=arguments.algorithm)
            records = list(log.records())
        database.attach_query_log(None)
    result = calibrate_records(records,
                               holdout_every=arguments.holdout_every)
    out.write(result.render() + "\n")
    if arguments.json:
        _write_json_payload(result.to_dict(), arguments.json, out)
    return 0


def _command_audit(arguments: argparse.Namespace, out: IO[str]) -> int:
    from repro.obs.audit import audit_records
    from repro.obs.querylog import read_query_log

    database = _open_database(arguments)
    factors = _whatif_factors(
        database, _parse_kv_floats(arguments.factor, "--factor"))
    if factors is not None:
        database.set_cost_factors(factors)
    scan = read_query_log(arguments.log)
    report = audit_records(database, scan.records,
                           algorithm=arguments.algorithm,
                           registry=database.service.registry,
                           why=arguments.why)
    out.write(report.render() + "\n")
    if arguments.json:
        _write_json_payload(report.to_dict(), arguments.json, out)
    return 3 if report.plan_flips else 0


def _parse_kv_floats(pairs: list[str], flag: str) -> dict[str, float]:
    """``NAME=VALUE`` option lists -> {name: float} (shared parser)."""
    parsed: dict[str, float] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name:
            raise ReproError(f"{flag} expects NAME=VALUE, got {pair!r}")
        try:
            parsed[name] = float(value)
        except ValueError:
            raise ReproError(
                f"{flag} {name}: {value!r} is not a number") from None
    return parsed


def _whatif_factors(database: Database,
                    overrides: dict[str, float]):
    """Current cost factors with the --factor overrides applied."""
    import dataclasses

    from repro.core.cost import COST_FACTOR_NAMES

    if not overrides:
        return None
    unknown = set(overrides) - set(COST_FACTOR_NAMES)
    if unknown:
        raise ReproError(
            f"unknown cost factor(s) {', '.join(sorted(unknown))}; "
            f"expected {', '.join(COST_FACTOR_NAMES)}")
    return dataclasses.replace(database.cost_factors, **overrides)


def _command_whatif(arguments: argparse.Namespace, out: IO[str]) -> int:
    if bool(arguments.xpath) == bool(arguments.log):
        raise ReproError("whatif needs exactly one of an XPath "
                         "argument or --log FILE")
    database = _open_database(arguments)
    factors = _whatif_factors(
        database, _parse_kv_floats(arguments.factor, "--factor"))
    tag_scale = _parse_kv_floats(arguments.scale, "--scale")
    if arguments.log:
        if arguments.force:
            raise ReproError("--force applies to a single query; "
                             "drop --log")
        from repro.obs.querylog import read_query_log

        scan = read_query_log(arguments.log)
        queries: dict[str, None] = {}
        for record in scan.records:
            query = record.get("query")
            if isinstance(query, str) and query:
                queries.setdefault(query)
        targets = list(queries)
    else:
        targets = [arguments.xpath]
    results = []
    flips = 0
    skipped = 0
    for query in targets:
        try:
            result = database.whatif(query,
                                     algorithm=arguments.algorithm,
                                     factors=factors,
                                     tag_scale=tag_scale,
                                     exact=arguments.exact,
                                     force_plan=arguments.force)
        except ReproError:
            skipped += 1
            continue
        results.append(result)
        flips += result.flipped
        out.write(result.render() + "\n")
    if len(targets) > 1 or skipped:
        out.write(f"what-if: {len(results)} queries, {flips} "
                  f"flip(s)"
                  + (f", {skipped} skipped" if skipped else "")
                  + "\n")
    if arguments.json:
        payload: object = (results[0].to_dict() if len(results) == 1
                           else [r.to_dict() for r in results])
        _write_json_payload(payload, arguments.json, out)
    return 0


def _command_trace(arguments: argparse.Namespace, out: IO[str]) -> int:
    from repro.core.dpp import DPPOptimizer
    from repro.core.trace import SearchTrace
    from repro.core.viz import trace_to_dot

    database = _open_database(arguments)
    pattern = database.compile(arguments.xpath)
    recorder = SearchTrace()
    optimizer = DPPOptimizer(cost_model=database.cost_model,
                             trace=recorder)
    result = optimizer.optimize(pattern, database.estimator)
    if arguments.dot:
        out.write(trace_to_dot(recorder) + "\n")
        return 0
    out.write(pattern.describe() + "\n\n")
    out.write(recorder.narrative(limit=arguments.limit) + "\n\n")
    out.write(f"chosen plan (estimated {result.estimated_cost:,.0f}):\n")
    out.write(result.explain() + "\n")
    return 0


CRASH_EXIT_CODE = 17
"""Exit code of the simulated crashes ``ingest`` can inject, chosen to
be distinguishable from real failures (1) and plan flips (3)."""


def _report_recovery(database: Database, out: IO[str]) -> None:
    result = database.transactions.last_recovery
    if result is None:
        return
    torn = (f", torn tail at byte {result.torn_offset}"
            if result.torn_offset is not None else "")
    out.write(f"recovery: {len(result.committed)} committed "
              f"transaction(s) replayed "
              f"({result.replayed_pages} pages), "
              f"{len(result.discarded)} discarded{torn}\n")


def _command_ingest(arguments: argparse.Namespace, out: IO[str]) -> int:
    import os

    from repro.txn.db import (PAGES_FILE, create_database,
                              open_database)

    if arguments.batches < 0:
        raise ReproError("--batches must be >= 0")
    source = _source_document(arguments)
    options = _service_options(arguments)
    batches = arguments.batches
    if os.path.exists(os.path.join(arguments.db, PAGES_FILE)):
        database = open_database(arguments.db, service_options=options)
        _report_recovery(database, out)
    else:
        database = create_database(arguments.db, document=source,
                                   service_options=options)
        out.write(f"created {arguments.db} with {len(source)} "
                  f"nodes\n")
        batches -= 1
    manager = database.transactions
    commits = 0
    for _ in range(batches):
        txn = manager.begin()
        txn.append_document(source)
        result = txn.commit()
        commits += 1
        out.write(f"txn {result.txn_id}: +{result.added} nodes, "
                  f"{result.pages_logged} pages, "
                  f"{result.wal_bytes} B WAL, "
                  f"epoch {result.statistics_epoch}\n")
        if arguments.crash_after and commits >= arguments.crash_after:
            out.write("simulated crash (kill -9) after commit; "
                      "no checkpoint, no cleanup\n")
            out.flush()
            os._exit(CRASH_EXIT_CODE)
        if (arguments.checkpoint_every
                and commits % arguments.checkpoint_every == 0):
            dropped = database.checkpoint()
            out.write(f"checkpoint: dropped {dropped} WAL bytes\n")
    if arguments.torn_tail:
        txn = manager.begin()
        txn.append_document(source)
        result = txn.commit()
        # Tear into the final COMMIT frame: on reopen this transaction
        # must be discarded as if the crash hit before the fsync.
        manager.wal.truncate(max(0, manager.wal.size - 7))
        out.write(f"tore the WAL tail mid-record; txn "
                  f"{result.txn_id} must vanish on reopen\n")
        out.flush()
        os._exit(CRASH_EXIT_CODE)
    out.write(f"document: {len(database.document)} nodes, "
              f"{database.disk.page_count} pages, "
              f"wal {manager.wal.size} bytes, "
              f"epoch {database.statistics_epoch}\n")
    return 0


def _command_checkpoint(arguments: argparse.Namespace,
                        out: IO[str]) -> int:
    from repro.txn.db import open_database

    database = open_database(arguments.db)
    _report_recovery(database, out)
    dropped = database.checkpoint()
    out.write(f"checkpoint: dropped {dropped} WAL bytes; "
              f"{database.disk.page_count} pages durable, "
              f"{len(database.document)} nodes\n")
    return 0


_COMMANDS = {
    "query": _command_query,
    "explain": _command_explain,
    "stats": _command_stats,
    "serve": _command_serve,
    "generate": _command_generate,
    "bench": _command_bench,
    "log": _command_log,
    "calibrate": _command_calibrate,
    "audit": _command_audit,
    "whatif": _command_whatif,
    "trace": _command_trace,
    "ingest": _command_ingest,
    "checkpoint": _command_checkpoint,
}


def main(argv: Sequence[str] | None = None,
         out: IO[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _COMMANDS[arguments.command](arguments, out)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
