"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``query``    — run an XPath query against an XML file or a generated
  data set, with algorithm selection, plan explanation and metrics.
* ``explain``  — show the plans every algorithm picks for a query.
* ``stats``    — storage and data statistics of a document.
* ``generate`` — write one of the synthetic benchmark documents as XML.
* ``bench``    — regenerate a paper table or figure.

Examples::

    python -m repro query --xml pers.xml "//manager//employee/name"
    python -m repro query --dataset pers --nodes 3000 --algorithm FP \
        --explain "//manager/department/name"
    python -m repro explain --dataset dblp "//article/author"
    python -m repro explain --dataset pers --analyze --engine block \
        "//manager//employee/name"
    python -m repro explain --dataset pers --trace "//manager//name"
    python -m repro stats --dataset pers --serve 5 --format prometheus
    python -m repro generate mbench --nodes 2000 --output mbench.xml
    python -m repro bench table2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Sequence

from repro.api import Database
from repro.bench.experiments import (figure7, figure8, table1, table2,
                                     table3)
from repro.bench.harness import ExperimentSetup
from repro.document.serialize import write_xml
from repro.errors import ReproError
from repro.workloads.queries import dataset_document

ALGORITHMS = ("DP", "DPP", "DPP'", "DPAP-EB", "DPAP-LD", "FP")

BENCH_DRIVERS = {
    "table1": lambda setup: table1(setup),
    "table2": lambda setup: table2(setup),
    "table3": lambda setup: table3(setup),
    "figure7": lambda setup: figure7(setup),
    "figure8": lambda setup: figure8(setup),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Structural join order selection for XML queries "
                    "(ICDE 2003 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_source(sub: argparse.ArgumentParser) -> None:
        source = sub.add_mutually_exclusive_group(required=True)
        source.add_argument("--xml", metavar="FILE",
                            help="load an XML document from a file")
        source.add_argument("--dataset",
                            choices=("pers", "dblp", "mbench"),
                            help="generate a synthetic data set")
        sub.add_argument("--nodes", type=int, default=2000,
                         help="target size for generated data sets")
        sub.add_argument("--seed", type=int, default=42)

    query = commands.add_parser("query", help="run an XPath query")
    add_source(query)
    query.add_argument("xpath")
    query.add_argument("--algorithm", choices=ALGORITHMS, default="DPP")
    query.add_argument("--engine", choices=("block", "tuple"),
                       default="block",
                       help="execution mode: columnar block-at-a-time "
                            "(default) or tuple-at-a-time iterators")
    query.add_argument("--holistic", action="store_true",
                       help="evaluate with one TwigStack instead of "
                            "binary joins")
    query.add_argument("--explain", action="store_true",
                       help="print the chosen plan")
    query.add_argument("--limit", type=int, default=10,
                       help="result rows to print (0 = none)")
    query.add_argument("--repeat", type=int, default=1,
                       help="serve the query N times through the "
                            "plan-caching service")
    query.add_argument("--workers", type=int, default=1,
                       help="thread-pool width for --repeat batches")

    explain = commands.add_parser(
        "explain", help="compare the plans all algorithms pick, or "
                        "EXPLAIN ANALYZE one of them")
    add_source(explain)
    explain.add_argument("xpath")
    explain.add_argument("--analyze", action="store_true",
                         help="execute the chosen plan under tracing "
                              "and annotate it with estimated vs. "
                              "actual rows/cost and per-operator "
                              "Q-error")
    explain.add_argument("--algorithm", choices=ALGORITHMS,
                         default="DPP",
                         help="optimizer for --analyze/--trace/--json "
                              "(without those flags every algorithm "
                              "is compared)")
    explain.add_argument("--engine", choices=("block", "tuple"),
                         default="block",
                         help="execution mode for --analyze")
    explain.add_argument("--trace", action="store_true",
                         help="print the optimizer's search trace "
                              "(DPP-family algorithms only)")
    explain.add_argument("--json", metavar="FILE", default=None,
                         help="write the report as JSON, including "
                              "the span tree under --analyze "
                              "('-' for stdout)")

    stats = commands.add_parser(
        "stats", help="document statistics and service metrics")
    add_source(stats)
    stats.add_argument("--format", choices=("table", "json",
                                            "prometheus"),
                       default="table",
                       help="table (default), metrics-registry JSON, "
                            "or the Prometheus text format")
    stats.add_argument("--serve", type=int, default=0, metavar="N",
                       help="first serve the data set's paper workload "
                            "N times through the query service, so "
                            "the metrics are non-trivial")

    generate = commands.add_parser(
        "generate", help="write a synthetic data set as XML")
    generate.add_argument("dataset", choices=("pers", "dblp", "mbench"))
    generate.add_argument("--nodes", type=int, default=2000)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", metavar="FILE", default="-",
                          help="output path ('-' for stdout)")

    bench = commands.add_parser(
        "bench", help="regenerate a paper table or figure, or run the "
                      "engine speed benchmark ('engines')")
    bench.add_argument("artifact",
                       choices=sorted(BENCH_DRIVERS) + ["engines"])
    bench.add_argument("--pers-nodes", type=int, default=2000)
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed runs per engine ('engines' only)")
    bench.add_argument("--json", metavar="FILE", default=None,
                       help="also write the report as JSON "
                            "('engines' only; e.g. BENCH_PR2.json)")

    trace = commands.add_parser(
        "trace", help="watch DPP optimize (Example 3.6 narrative)")
    add_source(trace)
    trace.add_argument("xpath")
    trace.add_argument("--dot", action="store_true",
                       help="emit the search graph as Graphviz dot")
    trace.add_argument("--limit", type=int, default=60,
                       help="events to print (narrative mode)")
    return parser


def _open_database(arguments: argparse.Namespace) -> Database:
    if arguments.xml:
        with open(arguments.xml, encoding="utf-8") as handle:
            return Database.from_xml(handle.read(), name=arguments.xml)
    kwargs = {"seed": arguments.seed}
    if arguments.dataset == "dblp":
        kwargs["entries"] = max(arguments.nodes // 9, 1)
    else:
        kwargs["target_nodes"] = arguments.nodes
    return Database.from_document(
        dataset_document(arguments.dataset, **kwargs))


def _write_service_stats(database: Database, out: IO[str]) -> None:
    snapshot = database.stats()
    latency = snapshot["latency"]
    cache = snapshot["plan_cache"]
    out.write(f"service: {snapshot['queries']} queries, "
              f"p50 {latency['p50_seconds'] * 1e3:.2f} ms, "
              f"p95 {latency['p95_seconds'] * 1e3:.2f} ms\n")
    out.write(f"plan cache: hit rate {cache['hit_rate']:.2%} "
              f"({cache['hits']} hits / {cache['misses']} misses, "
              f"{cache['size']}/{cache['capacity']} entries)\n")


def _command_query(arguments: argparse.Namespace, out: IO[str]) -> int:
    database = _open_database(arguments)
    pattern = database.compile(arguments.xpath)
    if arguments.repeat < 1:
        raise ReproError("--repeat must be at least 1")
    if arguments.holistic:
        execution = database.holistic_query(pattern)
        out.write(f"{len(execution)} matches (holistic twig join)\n")
    elif arguments.repeat > 1 or arguments.workers > 1:
        results = database.query_many(
            [pattern] * arguments.repeat,
            algorithm=arguments.algorithm,
            workers=arguments.workers,
            engine=arguments.engine)
        result = results[0]
        execution = result.execution
        out.write(f"{len(execution)} matches "
                  f"({arguments.algorithm} x{arguments.repeat}, "
                  f"{arguments.workers} workers)\n")
        if arguments.explain:
            out.write(result.explain() + "\n")
        _write_service_stats(database, out)
    else:
        result = database.query(pattern, algorithm=arguments.algorithm,
                                engine=arguments.engine)
        execution = result.execution
        report = result.optimization.report
        out.write(f"{len(execution)} matches "
                  f"({arguments.algorithm}: "
                  f"{report.optimization_seconds * 1e3:.2f} ms, "
                  f"{report.alternatives_considered} plans)\n")
        if arguments.explain:
            out.write(result.explain() + "\n")
    out.write(f"engine: {execution.metrics.summary()}\n")
    if arguments.limit:
        document = database.document
        for binding in execution.bindings()[:arguments.limit]:
            parts = []
            for node_id in sorted(binding):
                node = document.node(binding[node_id].start)
                text = f"={node.text!r}" if node.text else ""
                parts.append(f"${node_id}<{node.tag}>{text}")
            out.write("  " + " ".join(parts) + "\n")
    return 0


def _command_explain(arguments: argparse.Namespace, out: IO[str]) -> int:
    database = _open_database(arguments)
    pattern = database.compile(arguments.xpath)
    if arguments.trace:
        from repro.core.trace import SearchTrace

        recorder = SearchTrace()
        try:
            result = database.optimize(pattern,
                                       algorithm=arguments.algorithm,
                                       trace=recorder)
        except TypeError:
            raise ReproError(
                f"--trace needs a DPP-family algorithm "
                f"(DPP, DPP', DPAP-EB, DPAP-LD); "
                f"{arguments.algorithm} does not record a search trace")
        out.write(f"=== {arguments.algorithm} search trace\n")
        out.write(recorder.narrative(limit=60) + "\n\n")
        out.write(f"chosen plan (estimated "
                  f"{result.estimated_cost:,.0f}):\n")
        out.write(result.explain() + "\n")
        if not (arguments.analyze or arguments.json):
            return 0
    if arguments.analyze or arguments.json:
        report = database.explain(arguments.xpath,
                                  algorithm=arguments.algorithm,
                                  analyze=arguments.analyze,
                                  engine=arguments.engine)
        out.write(report.render() + "\n")
        if arguments.json:
            payload = json.dumps(report.to_dict(), indent=2,
                                 sort_keys=True) + "\n"
            if arguments.json == "-":
                out.write(payload)
            else:
                with open(arguments.json, "w",
                          encoding="utf-8") as handle:
                    handle.write(payload)
                out.write(f"wrote {arguments.json}\n")
        return 0
    out.write("Pattern:\n" + pattern.describe() + "\n")
    for algorithm in ALGORITHMS:
        result = database.optimize(pattern, algorithm=algorithm)
        out.write(f"\n=== {algorithm} "
                  f"(estimated {result.estimated_cost:,.0f}, "
                  f"{result.report.alternatives_considered} plans, "
                  f"{result.report.optimization_seconds * 1e3:.2f} ms)\n")
        out.write(result.explain() + "\n")
    return 0


def _serve_paper_workload(database: Database, dataset: str | None,
                          repeats: int) -> int:
    """Run the data set's Table-1 queries *repeats* times through the
    plan-caching service; returns how many queries were served."""
    from repro.workloads.queries import PAPER_QUERIES

    queries = [query.pattern for query in PAPER_QUERIES.values()
               if dataset is None or query.dataset == dataset]
    if not queries:
        return 0
    database.query_many(queries * repeats)
    return len(queries) * repeats


def _command_stats(arguments: argparse.Namespace, out: IO[str]) -> int:
    database = _open_database(arguments)
    if arguments.serve:
        _serve_paper_workload(database, arguments.dataset,
                              arguments.serve)
    if arguments.format != "table":
        out.write(database.service.export_metrics(arguments.format))
        return 0
    for key, value in database.statistics().items():
        out.write(f"{key:16s} {value}\n")
    if arguments.serve:
        _write_service_stats(database, out)
    histogram = database.document.tag_histogram()
    out.write("tags:\n")
    for tag in sorted(histogram, key=histogram.get, reverse=True):
        out.write(f"  {tag:16s} {histogram[tag]}\n")
    return 0


def _command_generate(arguments: argparse.Namespace,
                      out: IO[str]) -> int:
    kwargs = {"seed": arguments.seed}
    if arguments.dataset == "dblp":
        kwargs["entries"] = max(arguments.nodes // 9, 1)
    else:
        kwargs["target_nodes"] = arguments.nodes
    document = dataset_document(arguments.dataset, **kwargs)
    if arguments.output == "-":
        write_xml(document, out)
    else:
        with open(arguments.output, "w", encoding="utf-8") as handle:
            write_xml(document, handle)
        out.write(f"wrote {len(document)} nodes to "
                  f"{arguments.output}\n")
    return 0


def _command_bench(arguments: argparse.Namespace, out: IO[str]) -> int:
    setup = ExperimentSetup(pers_nodes=arguments.pers_nodes)
    if arguments.artifact == "engines":
        from repro.bench.speed import (engine_speed_report, render_report,
                                       write_report)

        report = engine_speed_report(setup, repeats=arguments.repeats)
        out.write(render_report(report) + "\n")
        if arguments.json:
            write_report(report, arguments.json)
            out.write(f"wrote {arguments.json}\n")
        return 0
    output = BENCH_DRIVERS[arguments.artifact](setup)
    out.write(output.text + "\n")
    return 0


def _command_trace(arguments: argparse.Namespace, out: IO[str]) -> int:
    from repro.core.dpp import DPPOptimizer
    from repro.core.trace import SearchTrace
    from repro.core.viz import trace_to_dot

    database = _open_database(arguments)
    pattern = database.compile(arguments.xpath)
    recorder = SearchTrace()
    optimizer = DPPOptimizer(cost_model=database.cost_model,
                             trace=recorder)
    result = optimizer.optimize(pattern, database.estimator)
    if arguments.dot:
        out.write(trace_to_dot(recorder) + "\n")
        return 0
    out.write(pattern.describe() + "\n\n")
    out.write(recorder.narrative(limit=arguments.limit) + "\n\n")
    out.write(f"chosen plan (estimated {result.estimated_cost:,.0f}):\n")
    out.write(result.explain() + "\n")
    return 0


_COMMANDS = {
    "query": _command_query,
    "explain": _command_explain,
    "stats": _command_stats,
    "generate": _command_generate,
    "bench": _command_bench,
    "trace": _command_trace,
}


def main(argv: Sequence[str] | None = None,
         out: IO[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _COMMANDS[arguments.command](arguments, out)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
