#!/usr/bin/env python3
"""Tour of the storage substrate: pages, buffer pool, persistence.

Builds a file-backed database, shows where the bytes go (element-store
pages vs tag-index pages), demonstrates buffer-pool behaviour under a
query, and re-opens the page file to prove the data survived.

Run:  python examples/storage_tour.py
"""

import tempfile
from pathlib import Path

from repro import Database
from repro.storage import FileDisk
from repro.workloads import personnel_document


def main() -> None:
    document = personnel_document(target_nodes=6000)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pers.pages"

        with FileDisk(path) as disk:
            # a pool smaller than the database forces real evictions
            database = Database(disk=disk, buffer_capacity=8)
            database.load(document)
            stats = database.statistics()
            print("After load:")
            for key, value in stats.items():
                print(f"  {key:16s} {value}")
            print(f"  file size        {path.stat().st_size:,} bytes")

            # run a query through a deliberately small buffer pool
            result = database.query("//manager//employee/name")
            metrics = result.execution.metrics
            pool = database.pool
            print(f"\nQuery returned {len(result)} matches")
            print(f"  page reads       {metrics.page_reads}")
            print(f"  buffer hits      {metrics.buffer_hits}")
            print(f"  buffer misses    {metrics.buffer_misses}")
            print(f"  hit rate         {pool.stats.hit_rate:.1%}")
            print(f"  index postings   {metrics.index_items}")
            matches_before = result.execution.canonical()
            database.persist()  # catalog written to page 0

        # re-open the database from its pages alone — no XML source
        with FileDisk(path) as disk:
            reopened = Database.open(disk, buffer_capacity=32)
            print(f"\nRe-opened {path.name}: "
                  f"{len(reopened.document)} nodes, "
                  f"{disk.page_count} pages")
            again = reopened.query("//manager//employee/name")
            assert again.execution.canonical() == matches_before
            print(f"  same {len(again)} matches from the reopened "
                  f"database")


if __name__ == "__main__":
    main()
