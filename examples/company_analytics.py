#!/usr/bin/env python3
"""Beyond pattern matching: grouping, value joins, online results.

The paper's Sec. 6 lists value-based joins and grouping as the next
operations to layer on top of structural pattern matching.  This
example runs all three extensions on one personnel database:

1. grouping — employees per manager (an aggregate over a match set);
2. value join — employees and department heads who share a name
   (text-to-text equi-join between two pattern queries);
3. online results — time to first tuple, FP plan vs the optimal
   (possibly blocking) plan.

Run:  python examples/company_analytics.py
"""

from repro import Database
from repro.engine import group_counts
from repro.workloads import personnel_document


def main() -> None:
    document = personnel_document(target_nodes=3000)
    database = Database.from_document(document)
    print(f"Data: {len(document)} nodes, "
          f"{document.tag_count('manager')} managers, "
          f"{document.tag_count('employee')} employees\n")

    # 1. grouping: direct reports per manager
    matches = database.query("//manager/employee").execution
    counts = group_counts(matches, by_node=0)
    busiest = sorted(counts.items(), key=lambda item: -item[1])[:5]
    print("Managers with the most direct reports:")
    for region, count in busiest:
        manager = document.node(region.start)
        name = next((child.text for child in document.children(manager)
                     if child.tag == "name"), "?")
        print(f"  {name:24s} {count} employees")

    # 2. value join: employees who share a name with anyone in a
    #    department (same text in two different structural contexts)
    joined = database.value_join(
        "//employee/name", "//department//name",
        left_node=1, right_node=1)
    print(f"\nEmployee names also appearing inside departments: "
          f"{len(joined)} pairs")
    for key in sorted(set(joined.keys(document, 1)))[:5]:
        print(f"  {key}")

    # 3. online results: FP's first tuple vs the optimal plan's
    query = "//manager[.//department/name]//employee/name"
    fp_timing = database.time_to_first(query, algorithm="FP")
    dpp_timing = database.time_to_first(query, algorithm="DPP")
    print(f"\nTime to first result for {query}:")
    print(f"  FP : first {fp_timing.first_seconds * 1e3:7.2f} ms  "
          f"(full run {fp_timing.total_seconds * 1e3:7.2f} ms, "
          f"{fp_timing.total_count} results)")
    print(f"  DPP: first {dpp_timing.first_seconds * 1e3:7.2f} ms  "
          f"(full run {dpp_timing.total_seconds * 1e3:7.2f} ms)")


if __name__ == "__main__":
    main()
