#!/usr/bin/env python3
"""The paper's running example (Fig. 1 / Example 2.2), end to end.

"For each manager A, list the names of the employees supervised by A,
and the name of any department that is directly supervised by another
manager who is a subordinate of A."

This script generates a Pers-like personnel hierarchy, builds the
6-node pattern of Fig. 1, runs all five optimization algorithms plus
the worst-of-30 random plan, and compares what they chose and what it
cost.

Run:  python examples/personnel_query.py [node_count]
"""

import sys

from repro import Database, QueryPattern
from repro.workloads import personnel_document

ALGORITHMS = ("DP", "DPP", "DPP'", "DPAP-EB", "DPAP-LD", "FP")


def build_pattern() -> QueryPattern:
    """Fig. 1: manager//employee/name + manager//manager/department/name."""
    return QueryPattern.build({
        "nodes": ["manager", "employee", "name", "manager",
                  "department", "name"],
        "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//"),
                  (3, 4, "/"), (4, 5, "/")],
    })


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    document = personnel_document(target_nodes=nodes)
    database = Database.from_document(document)
    pattern = build_pattern()
    database.warm_statistics(pattern)

    print(f"Data: {len(document)} nodes, depth {document.depth()}, "
          f"{document.tag_count('manager')} managers")
    print("Pattern:")
    print(pattern.describe())
    print()

    header = (f"{'algorithm':9s} {'opt ms':>8s} {'est cost':>12s} "
              f"{'eval sim':>12s} {'matches':>8s} {'plans':>6s}  shape")
    print(header)
    print("-" * len(header))

    for algorithm in ALGORITHMS:
        optimization = database.optimize(pattern, algorithm=algorithm)
        execution = database.execute(optimization.plan, pattern)
        shape = ("pipelined" if optimization.plan.is_fully_pipelined
                 else f"{optimization.plan.sort_count()} sort(s)")
        shape += ", left-deep" if optimization.plan.is_left_deep \
            else ", bushy"
        print(f"{algorithm:9s} "
              f"{optimization.report.optimization_seconds * 1e3:8.2f} "
              f"{optimization.estimated_cost:12,.0f} "
              f"{execution.metrics.simulated_cost():12,.0f} "
              f"{len(execution):8d} "
              f"{optimization.report.alternatives_considered:6d}  "
              f"{shape}")

    bad_plan, bad_estimate = database.bad_plan(pattern, samples=30)
    bad_execution = database.execute(bad_plan, pattern)
    print(f"{'bad':9s} {'-':>8s} {bad_estimate:12,.0f} "
          f"{bad_execution.metrics.simulated_cost():12,.0f} "
          f"{len(bad_execution):8d} {'30':>6s}  worst random")

    print("\nOptimal plan (DPP):")
    print(database.optimize(pattern, algorithm="DPP").explain())


if __name__ == "__main__":
    main()
