#!/usr/bin/env python3
"""Reproduce every table and figure of the paper's Sec. 4 in one run.

Prints Table 1, Table 2, Table 3, Figure 7 and Figure 8 in the paper's
layout.  ``--full`` uses the larger folding ramp (slower, closer to the
paper's x1/x10/x100/x500); ``--quick`` shrinks the data sets for a fast
smoke run.

Run:  python examples/reproduce_paper.py [--quick | --full]
"""

import argparse
import time

from repro.bench.experiments import (figure7, figure8, table1, table2,
                                     table3)
from repro.bench.harness import ExperimentSetup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small data sets (fast smoke run)")
    parser.add_argument("--full", action="store_true",
                        help="larger folding ramp (slow)")
    arguments = parser.parse_args()

    if arguments.quick:
        setup = ExperimentSetup(pers_nodes=500, dblp_entries=100,
                                mbench_nodes=600, bad_plan_samples=15)
        foldings = (1, 3, 9)
        figure7_folding = 9
    elif arguments.full:
        setup = ExperimentSetup()
        foldings = (1, 5, 25, 125)
        figure7_folding = 50
    else:
        setup = ExperimentSetup()
        foldings = (1, 5, 25)
        figure7_folding = 25

    experiments = [
        ("Table 1", lambda: table1(setup)),
        ("Table 2", lambda: table2(setup)),
        ("Table 3", lambda: table3(setup, foldings=foldings)),
        ("Figure 7", lambda: figure7(setup, folding=figure7_folding)),
        ("Figure 8", lambda: figure8(setup)),
    ]
    for name, runner in experiments:
        started = time.perf_counter()
        output = runner()
        elapsed = time.perf_counter() - started
        print(output.text)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n")


if __name__ == "__main__":
    main()
