#!/usr/bin/env python3
"""Watch DPP optimize — the paper's Example 3.6 / Fig. 4, live.

Attaches a SearchTrace to the DPP optimizer and prints the
optimization process for a 4-node pattern: which statuses get
generated (numbered in generation order, as in Fig. 4), which are
expanded by the Cost+ubCost priority, which deadends the Lookahead
Rule refuses to create, and where pruning kills the rest.

Run:  python examples/search_trace.py
"""

from repro import Database, DPPOptimizer, QueryPattern
from repro.core.trace import SearchTrace
from repro.estimation.estimator import ExactEstimator
from repro.workloads import personnel_document


def main() -> None:
    document = personnel_document(target_nodes=800)
    database = Database.from_document(document)

    # a 4-node pattern like the paper's Fig. 4 walk-through
    pattern = QueryPattern.build({
        "nodes": ["manager", "employee", "name", "department"],
        "edges": [(0, 1, "//"), (1, 2, "/"), (0, 3, "//")],
    })
    print("Pattern:")
    print(pattern.describe())

    trace = SearchTrace()
    optimizer = DPPOptimizer(trace=trace)
    result = optimizer.optimize(pattern, ExactEstimator(document))

    print(f"\nSearch process ({trace.status_count()} statuses, "
          f"{len(trace.events)} events):\n")
    print(trace.narrative())

    print("\nSummary:")
    print(f"  generated: {len(trace.events_of_kind('generate'))}")
    print(f"  expanded:  {len(trace.events_of_kind('expand'))}")
    print(f"  deadends avoided by lookahead: "
          f"{len(trace.events_of_kind('deadend'))}")
    print(f"  pruned:    {len(trace.events_of_kind('prune'))}")
    print(f"  final statuses reached: "
          f"{len(trace.events_of_kind('final'))}")

    print(f"\nChosen plan (estimated {result.estimated_cost:,.0f}):")
    print(result.explain())


if __name__ == "__main__":
    main()
