#!/usr/bin/env python3
"""Quickstart: load XML, ask an XPath question, inspect the plan.

Run:  python examples/quickstart.py
"""

from repro import Database

XML = """
<library>
  <shelf floor="1">
    <book year="1999"><title>Structural Joins</title>
      <author>Ada</author></book>
    <book year="2003"><title>Join Ordering</title>
      <author>Bob</author><author>Carol</author></book>
  </shelf>
  <shelf floor="2">
    <book year="2001"><title>Tree Patterns</title>
      <author>Ada</author></book>
  </shelf>
</library>
"""


def main() -> None:
    database = Database.from_xml(XML, name="library")
    print("Loaded:", database.statistics())

    # XPath compiles to a tree pattern; DPP picks the join order.
    query = "//shelf/book[@year >= '2000']/title"
    result = database.query(query, algorithm="DPP")

    print(f"\nQuery: {query}")
    print(f"Matches: {len(result)}")
    for binding in result.execution.bindings():
        title_region = binding[max(binding)]  # the title step
        node = database.document.node(title_region.start)
        print(f"  - {node.text}")

    print("\nChosen plan:")
    print(result.explain())

    print("\nOptimizer work:", result.optimization.report.summary())
    print("Engine work:   ", result.execution.metrics.summary())


if __name__ == "__main__":
    main()
