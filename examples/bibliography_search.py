#!/usr/bin/env python3
"""Bibliography search: XPath with value predicates on DBLP-like data.

Shows the front-to-back flow a user of the library sees: generate a
shallow/wide bibliography, pose XPath queries with attribute and text
predicates, and inspect how the positional-histogram estimator sized
the intermediate results against what actually came out.

Run:  python examples/bibliography_search.py
"""

from repro import Database
from repro.workloads import dblp_document

QUERIES = [
    "//article/author",
    "//inproceedings[@year >= '2000']/title",
    "//article[author = 'Ada Adams']/title",
    "//inproceedings[cite/label]/author",
    "//dblp/article[title and year]/author",
]


def main() -> None:
    document = dblp_document(entries=400)
    database = Database.from_document(document)
    print(f"Bibliography: {len(document)} nodes, "
          f"{document.tag_count('article')} articles, "
          f"{document.tag_count('inproceedings')} inproceedings\n")

    for xpath in QUERIES:
        pattern = database.compile(xpath)
        optimization = database.optimize(pattern, algorithm="DPP")
        execution = database.execute(optimization.plan, pattern)
        estimated = optimization.plan.estimated_cardinality
        print(f"{xpath}")
        print(f"  matches: {len(execution):6d}   "
              f"estimated: {estimated:10.1f}   "
              f"joins: {optimization.plan.join_count()}   "
              f"opt: {optimization.report.optimization_seconds * 1e3:.2f} ms")

        # show a couple of result titles/authors
        result_node = pattern.order_by
        position = execution.schema.position(result_node)
        for row in execution.tuples[:3]:
            node = document.node(row[position].start)
            print(f"    -> <{node.tag}> {node.text}")
        print()

    # estimator introspection: pairwise join size vs truth
    pattern = database.compile("//article/author")
    approx = database.estimator.edge_cardinality(pattern, 0, 1)
    exact = database.exact_estimator.edge_cardinality(pattern, 0, 1)
    print(f"estimator check on article/author: "
          f"positional={approx:.1f} exact={exact:.0f}")


if __name__ == "__main__":
    main()
